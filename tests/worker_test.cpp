// Failure-matrix tests for the distributed campaign workers (worker.hpp):
// claim races (exactly one winner), cooperative multi-worker drains that
// stay bit-identical to independent flows, stale-lease takeover (foreign
// stall and same-host dead pid), corrupt-artifact quarantine + recompute,
// terminal failure marking, and the kill-at-every-stage-boundary sweep
// against the real CLI binary with fault injection.
//
// The in-process tests drive CampaignWorker / lease::* directly on a tiny
// synthetic grid; the subprocess tests spawn the binary CMake passes in as
// PMLP_CLI_PATH with PMLP_FAULT_* environment overrides (fault_injection.hpp).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "flow_test_util.hpp"
#include "pmlp/core/campaign.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/core/worker.hpp"
#include "pmlp/datasets/synthetic.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace fs = std::filesystem;
using pmlp::test::expect_same_result;

namespace {

struct TempDir : pmlp::test::TempDir {
  explicit TempDir(const char* tag)
      : pmlp::test::TempDir("pmlp_worker_test", tag) {
    fs::create_directories(path);
  }
};

core::FlowConfig small_cfg(std::uint64_t seed) {
  core::FlowConfig cfg;
  cfg.backprop.epochs = 30;
  cfg.backprop.seed = 61;
  cfg.trainer.ga.population = 16;
  cfg.trainer.ga.generations = 6;
  cfg.trainer.ga.seed = seed;
  cfg.hardware.equivalence_samples = 8;
  return cfg;
}

ds::Dataset bc_data() {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 160;
  return ds::generate(spec);
}

pmlp::mlp::Topology bc_topo() { return pmlp::mlp::Topology{{10, 3, 2}}; }

/// Two seeds of one tiny dataset — enough flows to observe claim rotation
/// and failure isolation without slowing the suite down.
std::vector<core::CampaignFlowSpec> grid() {
  std::vector<core::CampaignFlowSpec> specs(2);
  specs[0] = {"bc_s1", "BreastCancer", bc_data(), bc_topo(), small_cfg(1)};
  specs[1] = {"bc_s2", "BreastCancer", bc_data(), bc_topo(), small_cfg(2)};
  return specs;
}

core::CampaignManifest grid_manifest() {
  core::CampaignManifest m;
  m.population = 16;
  m.generations = 6;
  m.flows = {{"bc_s1", "BreastCancer", 1}, {"bc_s2", "BreastCancer", 2}};
  return m;
}

core::WorkerConfig worker_cfg(const TempDir& dir, const std::string& id) {
  core::WorkerConfig cfg;
  cfg.checkpoint_root = dir.path.string();
  cfg.worker_id = id;
  cfg.heartbeat_s = 0.05;
  cfg.backoff_initial_s = 0.01;
  cfg.backoff_max_s = 0.05;
  return cfg;
}

/// Pure-reload pass over a drained tree: a single-threaded CampaignRunner
/// reusing every stage, producing the canonical per-flow results.
core::CampaignResult reload_tree(const TempDir& dir) {
  core::CampaignConfig cfg;
  cfg.n_threads = 1;
  cfg.checkpoint_root = dir.path.string();
  core::CampaignRunner runner(cfg);
  for (auto& spec : grid()) runner.add_flow(std::move(spec));
  return runner.run();
}

void expect_matches_independent_flows(const core::CampaignResult& result) {
  auto specs = grid();
  ASSERT_EQ(result.flows.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_EQ(result.flows[i].status, core::CampaignFlowStatus::kDone)
        << result.flows[i].name << ": " << result.flows[i].error;
    ASSERT_TRUE(result.flows[i].result.has_value());
    const auto ref =
        core::run_flow(specs[i].data, specs[i].topology, specs[i].config);
    expect_same_result(*result.flows[i].result, ref);
  }
}

void write_raw(const fs::path& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
}

std::string forged_claim(const std::string& worker, const std::string& host,
                         long pid) {
  std::ostringstream os;
  os << "pmlp-claim v1\nworker " << worker << "\nhost " << host << "\npid "
     << pid << "\nend\n";
  return os.str();
}

std::string local_host() {
  char buf[256] = {0};
  ::gethostname(buf, sizeof buf - 1);
  return buf[0] ? buf : "localhost";
}

/// A pid guaranteed dead on this host: fork a child that exits immediately
/// and reap it. (Pid reuse within the test's lifetime is implausible.)
long dead_pid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return pid;
}

}  // namespace

// ------------------------------------------------------------------ leases

TEST(Lease, ClaimRaceExactlyOneWins) {
  TempDir dir("claim_race");
  const std::string flow = (dir.path / "f").string();
  fs::create_directories(flow);
  EXPECT_TRUE(core::lease::try_claim(flow, "alice"));
  EXPECT_FALSE(core::lease::try_claim(flow, "bob"));  // filesystem arbitrates
  const auto claim = core::lease::read_claim(flow);
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->worker, "alice");
  EXPECT_EQ(claim->host, local_host());
  EXPECT_EQ(claim->pid, static_cast<long>(::getpid()));

  // Release by a non-owner is a no-op; by the owner it frees the lock.
  core::lease::release_claim(flow, "bob");
  EXPECT_TRUE(core::lease::read_claim(flow).has_value());
  core::lease::release_claim(flow, "alice");
  EXPECT_FALSE(core::lease::read_claim(flow).has_value());
  EXPECT_TRUE(core::lease::try_claim(flow, "bob"));
}

TEST(Lease, ManyRacersExactlyOneWins) {
  TempDir dir("many_racers");
  const std::string flow = (dir.path / "f").string();
  fs::create_directories(flow);
  std::array<int, 8> won{};
  std::vector<std::thread> racers;
  for (int t = 0; t < 8; ++t) {
    racers.emplace_back([&, t] {
      won[static_cast<std::size_t>(t)] =
          core::lease::try_claim(flow, "w" + std::to_string(t)) ? 1 : 0;
    });
  }
  for (auto& th : racers) th.join();
  int winners = 0;
  for (int w : won) winners += w;
  EXPECT_EQ(winners, 1);
}

TEST(Lease, StealIsAtomicAmongThieves) {
  TempDir dir("steal");
  const std::string flow = (dir.path / "f").string();
  fs::create_directories(flow);
  write_raw(fs::path(flow) / "claim.lock", forged_claim("ghost", "gone", 1));
  core::lease::write_beat(flow, "ghost", 1);
  // Exactly one thief wins the rename; the loser sees the lock gone.
  EXPECT_TRUE(core::lease::steal_claim(flow, "thief1"));
  EXPECT_FALSE(core::lease::steal_claim(flow, "thief2"));
  EXPECT_FALSE(core::lease::read_claim(flow).has_value());
  EXPECT_EQ(core::lease::read_beat_raw(flow), "");  // beat went with it
  EXPECT_TRUE(core::lease::try_claim(flow, "thief1"));
}

TEST(Lease, DeadLocalOwnerDetected) {
  core::lease::ClaimInfo claim;
  claim.worker = "ghost";
  claim.host = local_host();
  claim.pid = dead_pid();
  EXPECT_TRUE(core::lease::claim_owner_dead_locally(claim));
  claim.pid = ::getpid();  // we are demonstrably alive
  EXPECT_FALSE(core::lease::claim_owner_dead_locally(claim));
  claim.host = "some-other-host";  // no cross-host pid judgment
  claim.pid = dead_pid();
  EXPECT_FALSE(core::lease::claim_owner_dead_locally(claim));
}

// ---------------------------------------------------------------- manifest

TEST(Manifest, RoundTripAndRejects) {
  TempDir dir("manifest");
  const auto m = grid_manifest();
  core::save_campaign_manifest(m, dir.path.string());
  const auto r = core::load_campaign_manifest(dir.path.string());
  EXPECT_EQ(r.population, m.population);
  EXPECT_EQ(r.generations, m.generations);
  EXPECT_EQ(r.ga_checkpoint, m.ga_checkpoint);
  ASSERT_EQ(r.flows.size(), m.flows.size());
  for (std::size_t i = 0; i < m.flows.size(); ++i) {
    EXPECT_EQ(r.flows[i].name, m.flows[i].name);
    EXPECT_EQ(r.flows[i].dataset, m.flows[i].dataset);
    EXPECT_EQ(r.flows[i].seed, m.flows[i].seed);
  }

  TempDir empty("manifest_missing");
  EXPECT_THROW((void)core::load_campaign_manifest(empty.path.string()),
               std::runtime_error);
  write_raw(empty.path / "campaign.txt", "pmlp-campaign v9\nend\n");
  EXPECT_THROW((void)core::load_campaign_manifest(empty.path.string()),
               std::invalid_argument);
  write_raw(empty.path / "campaign.txt",
            "pmlp-campaign v1\npopulation 8\ngenerations 2\nga_checkpoint 0\n"
            "flows 2\nflow a X 1\nflow a X 2\nend\n");
  EXPECT_THROW((void)core::load_campaign_manifest(empty.path.string()),
               std::invalid_argument);  // duplicate flow name
}

// ------------------------------------------------------------------ worker

TEST(Worker, DrainsGridBitIdenticalToIndependentFlows) {
  TempDir dir("drain");
  core::save_campaign_manifest(grid_manifest(), dir.path.string());
  core::CampaignWorker worker(grid(), worker_cfg(dir, "solo"));
  const auto report = worker.run();
  EXPECT_EQ(report.flows_completed, 2);
  EXPECT_EQ(report.flows_failed, 0);
  EXPECT_EQ(report.stage_failures, 0);
  EXPECT_EQ(report.leases_stolen, 0);
  // 6 checkpointed stages + the derived select stage, per flow.
  EXPECT_EQ(report.stages_computed, 2 * 7);
  EXPECT_TRUE(fs::exists(dir.path / "bc_s1" / "done.txt"));
  EXPECT_TRUE(fs::exists(dir.path / "bc_s2" / "done.txt"));
  EXPECT_FALSE(fs::exists(dir.path / "bc_s1" / "claim.lock"));

  expect_matches_independent_flows(reload_tree(dir));

  const auto status = core::read_campaign_status(dir.path.string());
  EXPECT_EQ(status.done, 2);
  EXPECT_EQ(status.failed, 0);
  EXPECT_EQ(status.claimed, 0);
  for (const auto& row : status.flows) {
    EXPECT_EQ(row.stages_done, row.stages_total) << row.name;
    EXPECT_EQ(row.next_stage, "-") << row.name;
    EXPECT_TRUE(row.done) << row.name;
  }
}

TEST(Worker, TwoConcurrentWorkersCooperate) {
  TempDir dir("pair");
  core::save_campaign_manifest(grid_manifest(), dir.path.string());
  core::CampaignWorker a(grid(), worker_cfg(dir, "worker-a"));
  core::CampaignWorker b(grid(), worker_cfg(dir, "worker-b"));
  core::WorkerReport ra, rb;
  std::thread ta([&] { ra = a.run(); });
  std::thread tb([&] { rb = b.run(); });
  ta.join();
  tb.join();
  // Both return only when the whole tree is terminal; each flow was
  // completed exactly once no matter how the claims interleaved.
  EXPECT_EQ(ra.flows_completed + rb.flows_completed, 2);
  EXPECT_EQ(ra.flows_failed + rb.flows_failed, 0);
  EXPECT_EQ(ra.stage_failures + rb.stage_failures, 0);
  expect_matches_independent_flows(reload_tree(dir));
}

TEST(Worker, StaleForeignLeaseStolenAfterTimeout) {
  TempDir dir("stale");
  core::save_campaign_manifest(grid_manifest(), dir.path.string());
  // Forge a claim by a worker on another host that will never beat again —
  // the frozen (claim, beat) snapshot must age out on OUR clock and be
  // stolen, with no cross-host pid or clock judgment involved.
  fs::create_directories(dir.path / "bc_s1");
  write_raw(dir.path / "bc_s1" / "claim.lock",
            forged_claim("ghost", "some-other-host", 12345));
  core::lease::write_beat((dir.path / "bc_s1").string(), "ghost", 7);
  auto cfg = worker_cfg(dir, "survivor");
  cfg.lease_timeout_s = 0.2;
  core::CampaignWorker worker(grid(), cfg);
  const auto report = worker.run();
  EXPECT_GE(report.leases_stolen, 1);
  EXPECT_EQ(report.flows_completed, 2);
  expect_matches_independent_flows(reload_tree(dir));
}

TEST(Worker, DeadLocalOwnerReclaimedWithoutTimeout) {
  TempDir dir("deadpid");
  core::save_campaign_manifest(grid_manifest(), dir.path.string());
  fs::create_directories(dir.path / "bc_s1");
  write_raw(dir.path / "bc_s1" / "claim.lock",
            forged_claim("casualty", local_host(), dead_pid()));
  // Lease timeout far beyond the test budget: only the same-host dead-pid
  // fast path can reclaim this lease in time.
  auto cfg = worker_cfg(dir, "survivor");
  cfg.lease_timeout_s = 3600.0;
  core::CampaignWorker worker(grid(), cfg);
  const auto report = worker.run();
  EXPECT_GE(report.leases_stolen, 1);
  EXPECT_EQ(report.flows_completed, 2);
  expect_matches_independent_flows(reload_tree(dir));
}

TEST(Worker, TruncatedArtifactQuarantinedAndRecomputed) {
  TempDir dir("truncated");
  core::save_campaign_manifest(grid_manifest(), dir.path.string());
  {
    core::CampaignWorker worker(grid(), worker_cfg(dir, "first"));
    (void)worker.run();
  }
  // Bit-flip-by-truncation on a mid-pipeline artifact, then reopen the
  // flow (drop its terminal marker): the checksum footer must catch the
  // damage, quarantine the file and recompute it bit-identically.
  const fs::path victim = dir.path / "bc_s1" / "baseline.txt";
  const auto full = fs::file_size(victim);
  fs::resize_file(victim, full / 2);
  fs::remove(dir.path / "bc_s1" / "done.txt");
  core::CampaignWorker worker(grid(), worker_cfg(dir, "second"));
  const auto report = worker.run();
  EXPECT_EQ(report.flows_failed, 0);
  EXPECT_EQ(report.stage_failures, 0);
  EXPECT_TRUE(fs::exists(dir.path / "bc_s1" / "baseline.txt.corrupt-0"));
  EXPECT_EQ(fs::file_size(victim), full);  // recomputed, same bytes
  expect_matches_independent_flows(reload_tree(dir));
}

TEST(Worker, PoisonedFlowMarkedFailedRestDrains) {
  TempDir dir("poison");
  core::save_campaign_manifest(grid_manifest(), dir.path.string());
  // Unrecoverable damage: meta.txt carries the config fingerprint, so a
  // wrong version is fatal by design (never silently recomputed).
  fs::create_directories(dir.path / "bc_s1");
  write_raw(dir.path / "bc_s1" / "meta.txt", "pmlp-flow-meta v9\nend\n");
  auto cfg = worker_cfg(dir, "lone");
  cfg.max_failures = 2;
  core::CampaignWorker worker(grid(), cfg);
  const auto report = worker.run();  // must return, not wedge
  EXPECT_EQ(report.flows_failed, 1);
  EXPECT_EQ(report.flows_completed, 1);
  EXPECT_GE(report.stage_failures, 2);
  EXPECT_TRUE(fs::exists(dir.path / "bc_s1" / "failed.txt"));
  EXPECT_TRUE(fs::exists(dir.path / "bc_s2" / "done.txt"));

  const auto status = core::read_campaign_status(dir.path.string());
  EXPECT_EQ(status.failed, 1);
  EXPECT_EQ(status.done, 1);
  ASSERT_EQ(status.flows.size(), 2u);
  EXPECT_TRUE(status.flows[0].failed);
  EXPECT_NE(status.flows[0].error.find("meta"), std::string::npos)
      << status.flows[0].error;
}

TEST(Status, JsonCarriesTheGrid) {
  TempDir dir("status_json");
  core::save_campaign_manifest(grid_manifest(), dir.path.string());
  const auto status = core::read_campaign_status(dir.path.string());
  EXPECT_EQ(status.done, 0);
  std::ostringstream os;
  core::write_campaign_status_json(status, os);
  const std::string json = os.str();
  for (const char* needle :
       {"\"campaign\"", "\"flows\"", "\"bc_s1\"", "\"bc_s2\"",
        "\"next_stage\":\"split\"", "\"stages_total\":6"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
}

// --------------------------------------------------- CLI + fault injection

#ifdef PMLP_CLI_PATH

namespace {

struct CliResult {
  int status = -1;
  std::string out;
};

/// Run the real binary through /bin/sh (env-var prefixes work) capturing
/// stdout+stderr and the exit code.
CliResult run_cli(const std::string& cmdline) {
  const std::string cmd = cmdline + " 2>&1";
  CliResult r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.out.append(buf.data(), n);
  }
  const int rc = ::pclose(pipe);
  if (WIFEXITED(rc)) r.status = WEXITSTATUS(rc);
  return r;
}

const char* kCliGrid = " --datasets BreastCancer --seeds 1 campaign 8 4";

/// Coordinator run producing a reference tree, then stripped to a
/// manifest-only tree at `target` for workers to drain from scratch.
void make_manifest_only_tree(const fs::path& reference, const fs::path& target) {
  const auto r = run_cli(std::string(PMLP_CLI_PATH) + " --checkpoint " +
                         reference.string() + kCliGrid);
  ASSERT_EQ(r.status, 0) << r.out;
  fs::create_directories(target);
  fs::copy_file(reference / "campaign.txt", target / "campaign.txt",
                fs::copy_options::overwrite_existing);
}

/// Artifact text minus the wall-clock counters line (training results
/// record wall_seconds/evals_per_second) and the crc footer that hashes it
/// — everything semantically meaningful, byte for byte.
std::string read_deterministic_lines(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::string line, out;
  while (std::getline(is, line)) {
    if (line.rfind("counters ", 0) == 0 || line.rfind("# crc32 ", 0) == 0) {
      continue;
    }
    out += line;
    out += '\n';
  }
  return out;
}

/// The six checkpointed artifacts must be byte-identical between trees
/// (modulo recorded wall-clock) — the strongest form of "no grid progress
/// lost".
void expect_identical_artifacts(const fs::path& a, const fs::path& b) {
  for (const char* name :
       {"train_raw.ds", "test_raw.ds", "train.qds", "test.qds",
        "float_net.txt", "baseline.txt", "ga_front.txt", "refined_front.txt",
        "evaluated.txt"}) {
    const fs::path fa = a / "BreastCancer_s1" / name;
    const fs::path fb = b / "BreastCancer_s1" / name;
    ASSERT_TRUE(fs::exists(fa)) << fa;
    ASSERT_TRUE(fs::exists(fb)) << fb;
    EXPECT_EQ(read_deterministic_lines(fa), read_deterministic_lines(fb))
        << name;
  }
}

}  // namespace

TEST(WorkerCli, KillAtEveryStageBoundaryNeverLosesProgress) {
  TempDir dir("kill_sweep");
  const fs::path reference = dir.path / "reference";
  for (const char* stage :
       {"split", "backprop", "baseline", "ga", "refine", "hardware"}) {
    SCOPED_TRACE(stage);
    const fs::path tree = dir.path / (std::string("tree_") + stage);
    make_manifest_only_tree(reference, tree);
    // Worker killed right after committing `stage` (simulated SIGKILL:
    // _exit, no destructors, lease left behind).
    const auto killed =
        run_cli(std::string("PMLP_FAULT_KILL_STAGE=") + stage + " " +
                PMLP_CLI_PATH + " --worker --checkpoint " + tree.string() +
                " campaign");
    EXPECT_EQ(killed.status, 137) << killed.out;
    ASSERT_TRUE(fs::exists(tree / "BreastCancer_s1" / "claim.lock"))
        << killed.out;
    // A clean worker reclaims the dead lease (same-host pid probe) and
    // finishes the tree.
    const auto survivor = run_cli(std::string(PMLP_CLI_PATH) +
                                  " --worker --checkpoint " + tree.string() +
                                  " campaign");
    EXPECT_EQ(survivor.status, 0) << survivor.out;
    EXPECT_NE(survivor.out.find("1 stale leases reclaimed"),
              std::string::npos)
        << survivor.out;
    expect_identical_artifacts(reference, tree);
    fs::remove_all(tree);  // keep the scratch footprint bounded
  }
}

TEST(WorkerCli, KillInsideGaResumesFromGenerationCheckpoint) {
  TempDir dir("ga_kill");
  const fs::path reference = dir.path / "reference";
  const fs::path tree = dir.path / "tree";
  make_manifest_only_tree(reference, tree);
  const auto killed = run_cli(
      std::string("PMLP_FAULT_KILL_GA_GEN=2 ") + PMLP_CLI_PATH +
      " --worker --ga-checkpoint 1 --checkpoint " + tree.string() +
      " campaign");
  EXPECT_EQ(killed.status, 137) << killed.out;
  // Killed inside the GA stage: the generation scratch survived the crash.
  EXPECT_TRUE(fs::exists(tree / "BreastCancer_s1" / "ga_state.txt"))
      << killed.out;
  const auto survivor =
      run_cli(std::string(PMLP_CLI_PATH) + " --worker --ga-checkpoint 1" +
              " --checkpoint " + tree.string() + " campaign");
  EXPECT_EQ(survivor.status, 0) << survivor.out;
  // Resuming mid-GA from ga_state.txt converges to the same bytes as the
  // uninterrupted reference, and the scratch is cleaned up after commit.
  expect_identical_artifacts(reference, tree);
  EXPECT_FALSE(fs::exists(tree / "BreastCancer_s1" / "ga_state.txt"));
}

TEST(WorkerCli, InjectedCorruptionQuarantinedAndHealed) {
  TempDir dir("corrupt");
  const fs::path reference = dir.path / "reference";
  const fs::path tree = dir.path / "tree";
  make_manifest_only_tree(reference, tree);
  // The fault truncates float_net.txt right after its commit; the next
  // claim's checksum verification must quarantine and recompute it.
  const auto r = run_cli(std::string("PMLP_FAULT_CORRUPT=float_net.txt ") +
                         PMLP_CLI_PATH + " --worker --checkpoint " +
                         tree.string() + " campaign");
  EXPECT_EQ(r.status, 0) << r.out;
  EXPECT_TRUE(
      fs::exists(tree / "BreastCancer_s1" / "float_net.txt.corrupt-0"))
      << r.out;
  expect_identical_artifacts(reference, tree);
}

TEST(WorkerCli, WorkerFlagsRequireWorkerMode) {
  const auto r = run_cli(std::string(PMLP_CLI_PATH) +
                         " --worker-id w1 --checkpoint /tmp campaign 8 4");
  EXPECT_EQ(r.status, 2) << r.out;
  EXPECT_NE(r.out.find("--worker"), std::string::npos) << r.out;
}

TEST(WorkerCli, WorkerRejectsPositionalGrid) {
  const auto r = run_cli(std::string(PMLP_CLI_PATH) +
                         " --worker --checkpoint /tmp campaign 8 4");
  EXPECT_EQ(r.status, 2) << r.out;
  EXPECT_NE(r.out.find("manifest"), std::string::npos) << r.out;
}

TEST(WorkerCli, StatusRequiresCheckpoint) {
  const auto r = run_cli(std::string(PMLP_CLI_PATH) + " campaign status");
  EXPECT_EQ(r.status, 2) << r.out;
  EXPECT_NE(r.out.find("--checkpoint"), std::string::npos) << r.out;
}

TEST(WorkerCli, WorkerOnTreeWithoutManifestExplains) {
  TempDir dir("nomanifest");
  const auto r = run_cli(std::string(PMLP_CLI_PATH) +
                         " --worker --checkpoint " + dir.path.string() +
                         " campaign");
  EXPECT_EQ(r.status, 1) << r.out;
  EXPECT_NE(r.out.find("campaign.txt"), std::string::npos) << r.out;
}

#endif  // PMLP_CLI_PATH
