// Tests for the end-to-end library flow (flow.hpp).
#include <gtest/gtest.h>

#include "pmlp/core/flow.hpp"
#include "pmlp/datasets/synthetic.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;

namespace {

core::FlowConfig small_cfg() {
  core::FlowConfig cfg;
  cfg.backprop.epochs = 60;
  cfg.backprop.seed = 61;
  cfg.trainer.ga.population = 30;
  cfg.trainer.ga.generations = 25;
  cfg.trainer.ga.seed = 61;
  cfg.hardware.equivalence_samples = 16;
  return cfg;
}

const core::FlowResult& bc_flow() {
  static const core::FlowResult r = [] {
    auto spec = ds::breast_cancer_spec();
    spec.n_samples = 280;
    return core::run_flow(ds::generate(spec),
                          pmlp::mlp::Topology{{10, 3, 2}}, small_cfg());
  }();
  return r;
}

}  // namespace

TEST(Flow, BaselineArtifactsConsistent) {
  const auto& b = bc_flow().baseline;
  EXPECT_EQ(b.train.size() + b.test.size(), 280u);
  EXPECT_GT(b.baseline_train_accuracy, 0.85);
  EXPECT_GT(b.baseline_test_accuracy, 0.80);
  EXPECT_GT(b.baseline_cost.area_mm2, 0.0);
  EXPECT_EQ(b.baseline.topology().layers,
            (std::vector<int>{10, 3, 2}));
}

TEST(Flow, ProducesVerifiedParetoAndPick) {
  const auto& r = bc_flow();
  ASSERT_FALSE(r.evaluated.empty());
  for (const auto& p : r.evaluated) EXPECT_TRUE(p.functional_match);
  ASSERT_FALSE(r.front.empty());
  EXPECT_LE(r.front.size(), r.evaluated.size());
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GE(r.best->test_accuracy,
            r.baseline.baseline_test_accuracy - 0.05 - 1e-9);
  EXPECT_GT(r.area_reduction, 1.0);
  EXPECT_GT(r.power_reduction, 1.0);
}

TEST(Flow, RefinementFlagReducesOrEqualsArea) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 240;
  const auto data = ds::generate(spec);
  auto cfg = small_cfg();
  cfg.refine = false;
  const auto plain =
      core::run_flow(data, pmlp::mlp::Topology{{10, 3, 2}}, cfg);
  cfg.refine = true;
  const auto refined =
      core::run_flow(data, pmlp::mlp::Topology{{10, 3, 2}}, cfg);
  // The refined run's minimum front area can only be <= the plain run's
  // (same GA trajectory, refinement is monotone on every point).
  ASSERT_FALSE(plain.front.empty());
  ASSERT_FALSE(refined.front.empty());
  EXPECT_LE(refined.front.front().cost.area_mm2,
            plain.front.front().cost.area_mm2 + 1e-9);
}

TEST(Flow, DeterministicInSeeds) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 200;
  const auto data = ds::generate(spec);
  const auto r1 = core::run_flow(data, pmlp::mlp::Topology{{10, 3, 2}},
                                 small_cfg());
  const auto r2 = core::run_flow(data, pmlp::mlp::Topology{{10, 3, 2}},
                                 small_cfg());
  ASSERT_EQ(r1.evaluated.size(), r2.evaluated.size());
  for (std::size_t i = 0; i < r1.evaluated.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.evaluated[i].cost.area_mm2,
                     r2.evaluated[i].cost.area_mm2);
    EXPECT_DOUBLE_EQ(r1.evaluated[i].test_accuracy,
                     r2.evaluated[i].test_accuracy);
  }
}
