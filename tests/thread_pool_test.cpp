#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pmlp/core/thread_pool.hpp"

namespace core = pmlp::core;

TEST(ResolveNThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(core::resolve_n_threads(0), 1);
  EXPECT_GE(core::resolve_n_threads(-2), 1);
}

TEST(ResolveNThreads, PositivePassesThrough) {
  EXPECT_EQ(core::resolve_n_threads(1), 1);
  EXPECT_EQ(core::resolve_n_threads(7), 7);
}

TEST(ThreadPool, AutoSizeSpawnsAtLeastOneWorker) {
  core::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  core::ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  core::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> pending;
  for (int i = 0; i < 32; ++i) {
    pending.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : pending) f.get();
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  core::ThreadPool pool(2);
  auto fut = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The pool must stay usable after a task threw.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  core::ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoOp) {
  core::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleWorkerStillCovers) {
  core::ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForMoreWorkersThanItems) {
  core::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstChunkException) {
  core::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("chunk 0");
                        }),
      std::runtime_error);
  // Pool survives and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    core::ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      (void)pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(done.load(), 16);
}
