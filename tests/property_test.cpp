// Cross-module randomized property tests: the invariants that hold the
// whole pipeline together, exercised on randomly generated models across
// topologies and bit configurations (TEST_P sweeps).
#include <gtest/gtest.h>

#include <random>

#include "pmlp/adder/fa_model.hpp"
#include "pmlp/bitops/bitops.hpp"
#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/hwmodel/cells.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/opt.hpp"
#include "pmlp/nsga2/nsga2.hpp"

namespace core = pmlp::core;
namespace nl = pmlp::netlist;
namespace mlp = pmlp::mlp;
namespace nsga2 = pmlp::nsga2;

namespace {

struct Shape {
  mlp::Topology topology;
  core::BitConfig bits;
};

std::vector<int> random_genes(const core::ChromosomeCodec& codec,
                              std::mt19937_64& rng) {
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return genes;
}

}  // namespace

class ModelProperties
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  /// Parameter tuple: (n_inputs, hidden, classes).
  [[nodiscard]] Shape shape() const {
    const auto [in, hid, out] = GetParam();
    Shape s;
    s.topology.layers = {in, hid, out};
    return s;
  }
};

// INVARIANT 1: the gate-level netlist computes exactly Eq. 4 — for every
// random model and every random input, argmax of the behavioural model
// equals the circuit's class index.
TEST_P(ModelProperties, NetlistMatchesEq4) {
  const Shape s = shape();
  core::ChromosomeCodec codec(s.topology, s.bits);
  std::mt19937_64 rng(0xE4 + s.topology.layers[0]);
  for (int trial = 0; trial < 6; ++trial) {
    const auto model = codec.decode(random_genes(codec, rng));
    const auto circuit = nl::build_bespoke_mlp(model.to_bespoke_desc("p"));
    for (int sample = 0; sample < 12; ++sample) {
      std::vector<std::uint8_t> x(
          static_cast<std::size_t>(s.topology.n_inputs()));
      for (auto& v : x) v = static_cast<std::uint8_t>(rng() & 0xF);
      EXPECT_EQ(circuit.predict(x), model.predict(x))
          << "trial " << trial << " sample " << sample;
    }
  }
}

// INVARIANT 2: the FA-count proxy upper-bounds the netlist's adder cells
// (constant folding can only remove hardware).
TEST_P(ModelProperties, FaProxyUpperBoundsNetlistAdders) {
  const Shape s = shape();
  core::ChromosomeCodec codec(s.topology, s.bits);
  std::mt19937_64 rng(0xFA + s.topology.layers[1]);
  for (int trial = 0; trial < 6; ++trial) {
    const auto model = codec.decode(random_genes(codec, rng));
    const auto circuit = nl::build_bespoke_mlp(model.to_bespoke_desc("p"));
    const long adders =
        circuit.nl.count(pmlp::hwmodel::CellType::kFullAdder) +
        circuit.nl.count(pmlp::hwmodel::CellType::kHalfAdder);
    EXPECT_LE(adders, model.fa_area());
  }
}

// INVARIANT 3: synthesis cleanups never change the circuit's function.
TEST_P(ModelProperties, OptimizePreservesFunction) {
  const Shape s = shape();
  core::ChromosomeCodec codec(s.topology, s.bits);
  std::mt19937_64 rng(0x09 + s.topology.layers[2]);
  const auto model = codec.decode(random_genes(codec, rng));
  const auto circuit = nl::build_bespoke_mlp(model.to_bespoke_desc("p"));
  const auto optimized = nl::optimize(circuit.nl);
  EXPECT_LE(optimized.gates().size(), circuit.nl.gates().size());
  for (int sample = 0; sample < 20; ++sample) {
    std::vector<bool> vec(circuit.nl.inputs().size());
    for (auto&& b : vec) b = (rng() & 1) != 0;
    EXPECT_EQ(optimized.simulate(vec), circuit.nl.simulate(vec));
  }
}

// INVARIANT 4: serialization is a faithful round trip for any model.
TEST_P(ModelProperties, SerializationRoundTrips) {
  const Shape s = shape();
  core::ChromosomeCodec codec(s.topology, s.bits);
  std::mt19937_64 rng(0x5E + s.topology.layers[0] * 7);
  const auto model = codec.decode(random_genes(codec, rng));
  const auto restored = core::from_text(core::to_text(model));
  EXPECT_EQ(codec.encode(restored), codec.encode(model));
}

// INVARIANT 5: codec decode(encode(m)) == m for any decodable genome, and
// the gene-kind layout matches bounds (masks bounded by input width,
// exponents by weight_bits - 2, signs binary).
TEST_P(ModelProperties, CodecLayoutConsistent) {
  const Shape s = shape();
  core::ChromosomeCodec codec(s.topology, s.bits);
  std::mt19937_64 rng(0xC0 + s.topology.layers[1] * 3);
  const auto genes = random_genes(codec, rng);
  EXPECT_EQ(codec.encode(codec.decode(genes)), genes);
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    switch (codec.kind(g)) {
      case core::GeneKind::kMask:
        EXPECT_EQ(b.lo, 0);
        EXPECT_TRUE(b.hi == 15 || b.hi == 255) << g;
        break;
      case core::GeneKind::kSign:
        EXPECT_EQ(b.lo, 0);
        EXPECT_EQ(b.hi, 1);
        break;
      case core::GeneKind::kExponent:
        EXPECT_EQ(b.lo, 0);
        EXPECT_EQ(b.hi, s.bits.max_exponent());
        break;
      case core::GeneKind::kBias:
        EXPECT_EQ(b.lo, static_cast<int>(s.bits.bias_min()));
        EXPECT_EQ(b.hi, static_cast<int>(s.bits.bias_max()));
        break;
    }
  }
}

// INVARIANT 6: QReLU range analysis is safe — hidden activations never
// exceed the activation range for any input.
TEST_P(ModelProperties, HiddenActivationsWithinRange) {
  const Shape s = shape();
  core::ChromosomeCodec codec(s.topology, s.bits);
  std::mt19937_64 rng(0x0A + s.topology.layers[2] * 11);
  const auto model = codec.decode(random_genes(codec, rng));
  // Probe with extreme inputs (all zeros, all ones, random).
  std::vector<std::vector<std::uint8_t>> probes;
  probes.emplace_back(static_cast<std::size_t>(s.topology.n_inputs()), 0);
  probes.emplace_back(static_cast<std::size_t>(s.topology.n_inputs()), 15);
  for (int t = 0; t < 10; ++t) {
    std::vector<std::uint8_t> x(
        static_cast<std::size_t>(s.topology.n_inputs()));
    for (auto& v : x) v = static_cast<std::uint8_t>(rng() & 0xF);
    probes.push_back(std::move(x));
  }
  for (const auto& x : probes) {
    // forward() clamps; re-deriving the first hidden layer by hand checks
    // the shift choice keeps the pre-clamp value representable.
    const auto out = model.forward(x);
    for (auto v : out) {
      EXPECT_LT(std::abs(v), std::int64_t{1} << 40);  // no runaway widths
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ModelProperties,
    ::testing::Values(std::make_tuple(4, 3, 2), std::make_tuple(6, 2, 3),
                      std::make_tuple(10, 3, 2), std::make_tuple(8, 4, 5),
                      std::make_tuple(5, 5, 7)));

// --------------------------------------------------------- NSGA-II fuzz

TEST(NsgaProperties, SortRanksAreConsistentOnRandomPopulations) {
  std::mt19937_64 rng(0x50);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<nsga2::Individual> pop(20);
    for (auto& ind : pop) {
      ind.objectives = {static_cast<double>(rng() % 10),
                        static_cast<double>(rng() % 10)};
      ind.constraint_violation = (rng() % 4 == 0) ? 1.0 : 0.0;
    }
    nsga2::fast_non_dominated_sort(pop);
    // No individual may dominate another of equal or lower rank.
    for (const auto& a : pop) {
      for (const auto& b : pop) {
        if (nsga2::dominates(a, b)) {
          EXPECT_LT(a.rank, b.rank);
        }
      }
    }
    // Every rank > 0 individual is dominated by someone one rank lower.
    for (const auto& b : pop) {
      if (b.rank == 0) continue;
      bool found = false;
      for (const auto& a : pop) {
        if (a.rank == b.rank - 1 && nsga2::dominates(a, b)) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(NsgaProperties, MutationRespectsBoundsUnderFuzz) {
  // Run a short optimization with extreme mutation pressure; every gene of
  // every individual must stay within bounds.
  class P final : public nsga2::Problem {
   public:
    [[nodiscard]] int n_genes() const override { return 9; }
    [[nodiscard]] nsga2::GeneBounds bounds(int g) const override {
      return {g % 3 - 1, g % 5 + 1};
    }
    [[nodiscard]] Evaluation evaluate(
        std::span<const int> genes) const override {
      double f = 0;
      for (int g : genes) f += g;
      return {{f, -f}, 0.0};
    }
  } problem;
  nsga2::Config cfg;
  cfg.population = 16;
  cfg.generations = 20;
  cfg.mutation_prob = 1.0;
  cfg.per_gene_rate = 0.9;
  cfg.seed = 77;
  const auto res = nsga2::optimize(problem, cfg);
  for (const auto& ind : res.population) {
    for (int g = 0; g < problem.n_genes(); ++g) {
      const auto b = problem.bounds(g);
      EXPECT_GE(ind.genes[static_cast<std::size_t>(g)], b.lo);
      EXPECT_LE(ind.genes[static_cast<std::size_t>(g)], b.hi);
    }
  }
}

// ------------------------------------------------- adder model stability

TEST(AdderProperties, ShiftingSummandsShiftsColumnsNotCount) {
  // Shifting every summand left by k multiplies the value by 2^k but the
  // variable-wire count must be unchanged.
  std::mt19937_64 rng(0xAD);
  for (int trial = 0; trial < 20; ++trial) {
    pmlp::adder::NeuronAdderSpec base;
    const int n = 2 + static_cast<int>(rng() % 5);
    for (int i = 0; i < n; ++i) {
      base.summands.push_back({static_cast<std::uint32_t>(rng() & 0xF), 4,
                               static_cast<int>(rng() % 3),
                               (rng() & 1) ? +1 : -1});
    }
    auto shifted = base;
    for (auto& s : shifted.summands) s.shift += 2;
    int base_wires = 0, shifted_wires = 0;
    for (const auto& s : base.summands) base_wires += s.wire_count();
    for (const auto& s : shifted.summands) shifted_wires += s.wire_count();
    EXPECT_EQ(base_wires, shifted_wires);
  }
}
