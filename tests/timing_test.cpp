// Tests for the §V-C voltage/timing co-analysis.
#include <gtest/gtest.h>

#include "pmlp/hwmodel/timing.hpp"

namespace hw = pmlp::hwmodel;

namespace {

hw::CircuitCost cost_with_delay(double delay_us) {
  hw::CircuitCost c;
  c.area_mm2 = 100.0;
  c.power_uw = 1000.0;
  c.critical_delay_us = delay_us;
  c.cell_count = 10;
  return c;
}

}  // namespace

TEST(Timing, MeetsClockAtNominal) {
  // 200 ms clock, 100 us path: enormous slack.
  EXPECT_TRUE(hw::meets_clock(cost_with_delay(100.0), 1.0, 200.0));
  // Path longer than the clock fails even at nominal supply.
  EXPECT_FALSE(hw::meets_clock(cost_with_delay(300'000.0), 1.0, 200.0));
}

TEST(Timing, DelayGrowsAsVoltageDrops) {
  // At 0.6 V delay scales by 1/0.36 = 2.78x: a path of 80 ms fits 200 ms
  // at 1 V but not at 0.6 V.
  const auto c = cost_with_delay(80'000.0);
  EXPECT_TRUE(hw::meets_clock(c, 1.0, 200.0));
  EXPECT_FALSE(hw::meets_clock(c, 0.6, 200.0));
}

TEST(Timing, RejectsOutOfRangeVoltage) {
  EXPECT_THROW((void)hw::meets_clock(cost_with_delay(1.0), 0.3, 200.0),
               std::invalid_argument);
  EXPECT_THROW((void)hw::meets_clock(cost_with_delay(1.0), 1.2, 200.0),
               std::invalid_argument);
}

TEST(Timing, MinFeasibleVoltageFloorsAtEgfetLimit) {
  // Tiny approximate circuits at printed clocks always reach 0.6 V —
  // the paper's §V-C setting.
  EXPECT_DOUBLE_EQ(hw::min_feasible_voltage(cost_with_delay(100.0), 200.0),
                   hw::kEgfetMinVoltage);
}

TEST(Timing, MinFeasibleVoltageBinarySearch) {
  // Path of 80 ms vs 200 ms clock: needs delay scale <= 2.5 => v >= 0.633.
  const double v = hw::min_feasible_voltage(cost_with_delay(80'000.0), 200.0);
  EXPECT_GT(v, hw::kEgfetMinVoltage);
  EXPECT_LT(v, 0.66);
  EXPECT_TRUE(hw::meets_clock(cost_with_delay(80'000.0), v, 200.0));
}

TEST(Timing, MinFeasibleVoltageNominalWhenInfeasible) {
  // Even 1 V misses timing: report nominal so callers can flag it.
  EXPECT_DOUBLE_EQ(
      hw::min_feasible_voltage(cost_with_delay(300'000.0), 200.0), 1.0);
}

TEST(Timing, ScaleToMinVoltagePowerFollowsCube) {
  const auto r = hw::scale_to_min_voltage(cost_with_delay(100.0), 200.0);
  EXPECT_DOUBLE_EQ(r.voltage, 0.6);
  EXPECT_NEAR(r.power_uw, 1000.0 * 0.216, 1e-9);
  EXPECT_GT(r.slack_ms, 0.0);
}

TEST(Timing, ScaleReportsSlack) {
  const auto r = hw::scale_to_min_voltage(cost_with_delay(80'000.0), 200.0);
  EXPECT_GE(r.slack_ms, 0.0);
  EXPECT_NEAR(r.delay_us / 1000.0 + r.slack_ms, 200.0, 1e-6);
}

TEST(Timing, RejectsBadClock) {
  EXPECT_THROW((void)hw::min_feasible_voltage(cost_with_delay(1.0), 0.0),
               std::invalid_argument);
}
