// Shared helpers for the flow-level test suites (flow_engine_test,
// campaign_test): a scratch-directory RAII guard and the bit-identity
// comparators for FlowResults. Keeping one copy prevents the comparators
// from drifting apart when FlowResult grows a field.
#pragma once

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "pmlp/core/flow.hpp"
#include "pmlp/core/serialize.hpp"

namespace pmlp::test {

/// Fresh scratch directory under the system temp dir, removed on
/// destruction. `prefix` + `tag` keep concurrent suites apart.
struct TempDir {
  std::filesystem::path path;
  TempDir(const char* prefix, const char* tag)
      : path(std::filesystem::temp_directory_path() /
             (std::string(prefix) + "_" + tag + "_" +
              std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

inline void expect_same_points(const std::vector<core::HwEvaluatedPoint>& a,
                               const std::vector<core::HwEvaluatedPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(core::to_text(a[i].model), core::to_text(b[i].model));
    EXPECT_EQ(a[i].test_accuracy, b[i].test_accuracy);
    EXPECT_EQ(a[i].fa_area, b[i].fa_area);
    EXPECT_EQ(a[i].functional_match, b[i].functional_match);
    EXPECT_EQ(a[i].cost.area_mm2, b[i].cost.area_mm2);
    EXPECT_EQ(a[i].cost.power_uw, b[i].cost.power_uw);
    EXPECT_EQ(a[i].cost.critical_delay_us, b[i].cost.critical_delay_us);
    EXPECT_EQ(a[i].cost.cell_count, b[i].cost.cell_count);
  }
}

inline void expect_same_result(const core::FlowResult& a,
                               const core::FlowResult& b) {
  EXPECT_EQ(a.baseline.baseline_train_accuracy,
            b.baseline.baseline_train_accuracy);
  EXPECT_EQ(a.baseline.baseline_test_accuracy,
            b.baseline.baseline_test_accuracy);
  EXPECT_EQ(a.baseline.baseline_cost.area_mm2,
            b.baseline.baseline_cost.area_mm2);
  EXPECT_EQ(a.training.evaluations, b.training.evaluations);
  ASSERT_EQ(a.training.estimated_pareto.size(),
            b.training.estimated_pareto.size());
  for (std::size_t i = 0; i < a.training.estimated_pareto.size(); ++i) {
    EXPECT_EQ(core::to_text(a.training.estimated_pareto[i].model),
              core::to_text(b.training.estimated_pareto[i].model));
    EXPECT_EQ(a.training.estimated_pareto[i].train_accuracy,
              b.training.estimated_pareto[i].train_accuracy);
    EXPECT_EQ(a.training.estimated_pareto[i].fa_area,
              b.training.estimated_pareto[i].fa_area);
  }
  expect_same_points(a.evaluated, b.evaluated);
  expect_same_points(a.front, b.front);
  ASSERT_EQ(a.best.has_value(), b.best.has_value());
  if (a.best) {
    EXPECT_EQ(core::to_text(a.best->model), core::to_text(b.best->model));
  }
  EXPECT_EQ(a.area_reduction, b.area_reduction);
  EXPECT_EQ(a.power_reduction, b.power_reduction);
}

}  // namespace pmlp::test
