// Exit-code and error-path tests for tools/pmlp_cli: argument and path
// errors must print an actionable message (valid dataset choices, the
// offending path) and exit with code 2 — never propagate an exception to
// std::terminate (which would abort with SIGABRT, status 134) and never
// start an expensive run that is doomed to fail at the end.
//
// The binary under test is passed in by CMake as PMLP_CLI_PATH.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "pmlp/core/serialize.hpp"

namespace fs = std::filesystem;

namespace {

struct CliResult {
  int status = -1;   ///< exit code; -1 = signal/abnormal termination
  std::string out;   ///< stdout + stderr
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(PMLP_CLI_PATH) + " " + args + " 2>&1";
  CliResult r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.out.append(buf.data(), n);
  }
  const int rc = ::pclose(pipe);
  if (WIFEXITED(rc)) r.status = WEXITSTATUS(rc);
  return r;
}

/// The error path must exit with the usage code, not crash: a raw
/// exception reaching std::terminate aborts (WIFEXITED false -> -1).
void expect_usage_error(const CliResult& r, const char* needle) {
  EXPECT_EQ(r.status, 2) << r.out;
  EXPECT_NE(r.out.find(needle), std::string::npos) << r.out;
}

}  // namespace

TEST(Cli, UnknownDatasetListsChoices) {
  const auto r = run_cli("run Bogus 8 1");
  expect_usage_error(r, "unknown dataset 'Bogus'");
  // The message must name the valid choices.
  EXPECT_NE(r.out.find("BreastCancer"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("WhiteWine"), std::string::npos) << r.out;
}

TEST(Cli, UnknownDatasetInMetricsAndBaseline) {
  for (const char* sub : {"metrics", "baseline"}) {
    const auto r = run_cli(std::string(sub) + " Nope");
    expect_usage_error(r, "unknown dataset 'Nope'");
    EXPECT_NE(r.out.find("Cardio"), std::string::npos) << r.out;
  }
}

TEST(Cli, CampaignUnknownDatasetListsChoices) {
  const auto r = run_cli("campaign --datasets BreastCancer,Bogus 8 1");
  expect_usage_error(r, "unknown dataset 'Bogus'");
  EXPECT_NE(r.out.find("Pendigits"), std::string::npos) << r.out;
}

TEST(Cli, CampaignEmptyDatasetEntryRejected) {
  const auto r = run_cli("campaign --datasets BreastCancer,, 8 1");
  expect_usage_error(r, "empty entry");
}

TEST(Cli, CampaignDuplicateDatasetRejected) {
  const auto r = run_cli("campaign --datasets Cardio,Cardio 8 1");
  expect_usage_error(r, "duplicate dataset 'Cardio'");
}

TEST(Cli, UnwritableJsonFailsBeforeTraining) {
  const auto r =
      run_cli("run BreastCancer 8 1 --json /nonexistent_dir_xyz/out.json");
  expect_usage_error(r, "/nonexistent_dir_xyz/out.json");
  // Fail-fast: no training output may precede the error.
  EXPECT_EQ(r.out.find("stage ga"), std::string::npos) << r.out;
}

TEST(Cli, CampaignUnwritableJsonFailsBeforeTraining) {
  const auto r = run_cli(
      "campaign --datasets BreastCancer --json /nonexistent_dir_xyz/c.json "
      "8 1");
  expect_usage_error(r, "/nonexistent_dir_xyz/c.json");
}

TEST(Cli, CheckpointPathThatIsAFileRejected) {
  const fs::path file =
      fs::temp_directory_path() / "pmlp_cli_test_ckpt_file.txt";
  std::ofstream(file) << "not a directory\n";
  const auto r = run_cli("run BreastCancer 8 1 --checkpoint " +
                         file.string());
  fs::remove(file);
  expect_usage_error(r, "not a directory");
}

TEST(Cli, GarbledPopulationRejected) {
  const auto r = run_cli("run BreastCancer twelve");
  expect_usage_error(r, "positive int");
}

TEST(Cli, GarbledGenerationsRejected) {
  const auto r = run_cli("campaign 8 zero");
  expect_usage_error(r, "positive int");
}

TEST(Cli, MissingOptionValueRejected) {
  for (const char* flag : {"--datasets", "--seeds", "--threads", "--json"}) {
    const auto r = run_cli(std::string("campaign ") + flag);
    EXPECT_EQ(r.status, 2) << flag << ": " << r.out;
    EXPECT_NE(r.out.find("requires a value"), std::string::npos)
        << flag << ": " << r.out;
  }
}

TEST(Cli, UnconsumedFlagsRejectedBeforeTraining) {
  // A flag the selected subcommand silently ignores would cost a full run
  // to discover; it must be rejected up front instead.
  const auto campaign = run_cli("campaign --save-front fronts 8 1");
  expect_usage_error(campaign, "--save-front is not supported");
  const auto run = run_cli("run BreastCancer 8 1 --seeds 3");
  expect_usage_error(run, "--seeds is not supported");
  const auto listed = run_cli("list --datasets BreastCancer");
  expect_usage_error(listed, "--datasets is not supported");
}

TEST(Cli, SaveFrontRerunRemovesStaleModels) {
  // A rerun producing a smaller front must not leave models from the
  // previous, larger front behind: the directory is republished atomically
  // (write .tmp sibling, rename into place), so after the run it holds
  // exactly the indexed files — nothing stale, no leftover staging dirs.
  const fs::path dir =
      fs::temp_directory_path() / "pmlp_cli_test_front_rerun";
  fs::remove_all(dir);
  // Exit 1 just means no design fell within the 5% loss budget at this tiny
  // GA budget; the front is saved either way. Only usage errors (2) or a
  // crash would invalidate the setup.
  const auto first =
      run_cli("run BreastCancer 8 2 --save-front " + dir.string());
  ASSERT_TRUE(first.status == 0 || first.status == 1) << first.out;
  ASSERT_TRUE(fs::exists(dir / "index.tsv")) << first.out;
  // Plant a stale model a glob-based loader would happily serve.
  std::ofstream(dir / "front_099.model") << "stale leftover\n";
  const auto second =
      run_cli("run BreastCancer 8 2 --save-front " + dir.string());
  ASSERT_TRUE(second.status == 0 || second.status == 1) << second.out;
  EXPECT_FALSE(fs::exists(dir / "front_099.model"));
  EXPECT_FALSE(fs::exists(dir.string() + ".tmp"));
  EXPECT_FALSE(fs::exists(dir.string() + ".old"));
  // The strict loader accepts the directory (it rejects any unindexed
  // front_*.model), and the on-disk set matches the index exactly.
  const auto entries = pmlp::core::load_front_dir(dir.string());
  ASSERT_FALSE(entries.empty());
  std::set<std::string> on_disk;
  for (const auto& ent : fs::directory_iterator(dir)) {
    on_disk.insert(ent.path().filename().string());
  }
  std::set<std::string> expected = {"index.tsv"};
  for (const auto& e : entries) expected.insert(e.file);
  EXPECT_EQ(on_disk, expected);
  fs::remove_all(dir);
}

TEST(Cli, ServeFlagsRejectedOnOtherSubcommands) {
  // The ignored-flag table must cover the serve flags both ways round.
  const auto serve_seeds = run_cli("serve --seeds 3 somedir");
  expect_usage_error(serve_seeds, "--seeds is not supported");
  const auto campaign_port = run_cli("campaign --port 9000 8 1");
  expect_usage_error(campaign_port, "--port is not supported");
  const auto run_batch = run_cli("run BreastCancer 8 1 --batch 4");
  expect_usage_error(run_batch, "--batch is not supported");
}

TEST(Cli, RtlFlagsRejectedOnOtherSubcommands) {
  // The new RTL flags must be in the ignored-flag table like every other
  // subcommand-specific option.
  const auto run_vectors = run_cli("run BreastCancer 8 1 --rtl-vectors 16");
  expect_usage_error(run_vectors, "--rtl-vectors is not supported");
  const auto serve_random = run_cli("serve --rtl-random 8 somedir");
  expect_usage_error(serve_random, "--rtl-random is not supported");
  const auto run_require = run_cli("run BreastCancer 8 1 --require-sim");
  expect_usage_error(run_require, "--require-sim is not supported");
  // --require-sim only makes sense where a simulator can run: verify-rtl,
  // not the export-only subcommand.
  const auto export_require =
      run_cli("export-rtl somedir - out --require-sim");
  expect_usage_error(export_require, "--require-sim is not supported");
}

TEST(Cli, RtlVectorFlagValuesValidated) {
  const auto garbled = run_cli("export-rtl somedir - out --rtl-vectors x");
  expect_usage_error(garbled, "non-negative int");
  const auto negative = run_cli("verify-rtl somedir - out --rtl-random -3");
  expect_usage_error(negative, "non-negative int");
}

TEST(Cli, ExportRtlMissingInputIsRuntimeFailure) {
  const auto r = run_cli("export-rtl /nonexistent_dir_xyz/front - out");
  EXPECT_EQ(r.status, 1) << r.out;
  EXPECT_NE(r.out.find("error:"), std::string::npos) << r.out;
}

TEST(Cli, ServeMissingDirectoryIsUsageError) {
  const auto r = run_cli("serve /nonexistent_dir_xyz/front");
  expect_usage_error(r, "does not exist or is not a directory");
}

TEST(Cli, ServeBadPortRejected) {
  const auto r = run_cli("serve --port 99999 somedir");
  EXPECT_EQ(r.status, 2) << r.out;
}

TEST(Cli, ClassifyBadCodesAreUsageErrors) {
  const fs::path dir =
      fs::temp_directory_path() / "pmlp_cli_test_classify";
  fs::remove_all(dir);
  const auto setup =
      run_cli("run BreastCancer 8 2 --save-front " + dir.string());
  ASSERT_TRUE(setup.status == 0 || setup.status == 1) << setup.out;
  ASSERT_TRUE(fs::exists(dir / "front_000.model")) << setup.out;
  const std::string model = (dir / "front_000.model").string();
  // Wrong arity (BreastCancer has 10 features).
  const auto arity = run_cli("classify " + model + " 1 2 3");
  expect_usage_error(arity, "feature codes");
  // Non-numeric code.
  const auto garbled =
      run_cli("classify " + model + " 1 2 3 4 5 6 7 8 9 x");
  expect_usage_error(garbled, "feature code 'x'");
  // Out of range for 4-bit inputs.
  const auto range =
      run_cli("classify " + model + " 1 2 3 4 5 6 7 8 9 16");
  expect_usage_error(range, "feature code '16'");
  // A valid request prints a bare class id and exits 0.
  const auto good =
      run_cli("classify " + model + " 1 2 3 4 5 6 7 8 9 10");
  EXPECT_EQ(good.status, 0) << good.out;
  fs::remove_all(dir);
}

TEST(Cli, ClassifyMissingModelIsRuntimeFailure) {
  const auto r = run_cli("classify /nonexistent_dir_xyz/m.model 1 2 3");
  EXPECT_EQ(r.status, 1) << r.out;
  EXPECT_NE(r.out.find("error:"), std::string::npos) << r.out;
}

TEST(Cli, CorruptModelIsRuntimeFailureNotUsageError) {
  const fs::path model =
      fs::temp_directory_path() / "pmlp_cli_test_corrupt.model";
  std::ofstream(model) << "not a model file\n";
  const auto r = run_cli("evaluate " + model.string() + " Cardio");
  fs::remove(model);
  // Corrupt artifacts are runtime failures (exit 1); only argument errors
  // use the usage exit code 2.
  EXPECT_EQ(r.status, 1) << r.out;
  EXPECT_NE(r.out.find("error:"), std::string::npos) << r.out;
}

TEST(Cli, CampaignResumeWithoutCheckpointRejected) {
  const auto r = run_cli("campaign --resume --datasets BreastCancer 8 1");
  expect_usage_error(r, "--resume requires --checkpoint");
}

TEST(Cli, CampaignResumeFromMissingRootRejected) {
  const auto r = run_cli(
      "campaign --resume --datasets BreastCancer --checkpoint "
      "/nonexistent_dir_xyz/camp 8 1");
  expect_usage_error(r, "no campaign checkpoint");
}

TEST(Cli, EvaluateMissingModelExitsNonZero) {
  const auto r = run_cli("evaluate /nonexistent_dir_xyz/m.model Cardio");
  // Runtime (not usage) failure: non-zero, message, no terminate.
  EXPECT_EQ(r.status, 1) << r.out;
  EXPECT_NE(r.out.find("error:"), std::string::npos) << r.out;
}

TEST(Cli, ListSucceeds) {
  const auto r = run_cli("list");
  EXPECT_EQ(r.status, 0) << r.out;
  EXPECT_NE(r.out.find("BreastCancer"), std::string::npos);
}
