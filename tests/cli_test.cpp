// Exit-code and error-path tests for tools/pmlp_cli: argument and path
// errors must print an actionable message (valid dataset choices, the
// offending path) and exit with code 2 — never propagate an exception to
// std::terminate (which would abort with SIGABRT, status 134) and never
// start an expensive run that is doomed to fail at the end.
//
// The binary under test is passed in by CMake as PMLP_CLI_PATH.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct CliResult {
  int status = -1;   ///< exit code; -1 = signal/abnormal termination
  std::string out;   ///< stdout + stderr
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(PMLP_CLI_PATH) + " " + args + " 2>&1";
  CliResult r;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.out.append(buf.data(), n);
  }
  const int rc = ::pclose(pipe);
  if (WIFEXITED(rc)) r.status = WEXITSTATUS(rc);
  return r;
}

/// The error path must exit with the usage code, not crash: a raw
/// exception reaching std::terminate aborts (WIFEXITED false -> -1).
void expect_usage_error(const CliResult& r, const char* needle) {
  EXPECT_EQ(r.status, 2) << r.out;
  EXPECT_NE(r.out.find(needle), std::string::npos) << r.out;
}

}  // namespace

TEST(Cli, UnknownDatasetListsChoices) {
  const auto r = run_cli("run Bogus 8 1");
  expect_usage_error(r, "unknown dataset 'Bogus'");
  // The message must name the valid choices.
  EXPECT_NE(r.out.find("BreastCancer"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("WhiteWine"), std::string::npos) << r.out;
}

TEST(Cli, UnknownDatasetInMetricsAndBaseline) {
  for (const char* sub : {"metrics", "baseline"}) {
    const auto r = run_cli(std::string(sub) + " Nope");
    expect_usage_error(r, "unknown dataset 'Nope'");
    EXPECT_NE(r.out.find("Cardio"), std::string::npos) << r.out;
  }
}

TEST(Cli, CampaignUnknownDatasetListsChoices) {
  const auto r = run_cli("campaign --datasets BreastCancer,Bogus 8 1");
  expect_usage_error(r, "unknown dataset 'Bogus'");
  EXPECT_NE(r.out.find("Pendigits"), std::string::npos) << r.out;
}

TEST(Cli, CampaignEmptyDatasetEntryRejected) {
  const auto r = run_cli("campaign --datasets BreastCancer,, 8 1");
  expect_usage_error(r, "empty entry");
}

TEST(Cli, CampaignDuplicateDatasetRejected) {
  const auto r = run_cli("campaign --datasets Cardio,Cardio 8 1");
  expect_usage_error(r, "duplicate dataset 'Cardio'");
}

TEST(Cli, UnwritableJsonFailsBeforeTraining) {
  const auto r =
      run_cli("run BreastCancer 8 1 --json /nonexistent_dir_xyz/out.json");
  expect_usage_error(r, "/nonexistent_dir_xyz/out.json");
  // Fail-fast: no training output may precede the error.
  EXPECT_EQ(r.out.find("stage ga"), std::string::npos) << r.out;
}

TEST(Cli, CampaignUnwritableJsonFailsBeforeTraining) {
  const auto r = run_cli(
      "campaign --datasets BreastCancer --json /nonexistent_dir_xyz/c.json "
      "8 1");
  expect_usage_error(r, "/nonexistent_dir_xyz/c.json");
}

TEST(Cli, CheckpointPathThatIsAFileRejected) {
  const fs::path file =
      fs::temp_directory_path() / "pmlp_cli_test_ckpt_file.txt";
  std::ofstream(file) << "not a directory\n";
  const auto r = run_cli("run BreastCancer 8 1 --checkpoint " +
                         file.string());
  fs::remove(file);
  expect_usage_error(r, "not a directory");
}

TEST(Cli, GarbledPopulationRejected) {
  const auto r = run_cli("run BreastCancer twelve");
  expect_usage_error(r, "positive int");
}

TEST(Cli, GarbledGenerationsRejected) {
  const auto r = run_cli("campaign 8 zero");
  expect_usage_error(r, "positive int");
}

TEST(Cli, MissingOptionValueRejected) {
  for (const char* flag : {"--datasets", "--seeds", "--threads", "--json"}) {
    const auto r = run_cli(std::string("campaign ") + flag);
    EXPECT_EQ(r.status, 2) << flag << ": " << r.out;
    EXPECT_NE(r.out.find("requires a value"), std::string::npos)
        << flag << ": " << r.out;
  }
}

TEST(Cli, UnconsumedFlagsRejectedBeforeTraining) {
  // A flag the selected subcommand silently ignores would cost a full run
  // to discover; it must be rejected up front instead.
  const auto campaign = run_cli("campaign --save-front fronts 8 1");
  expect_usage_error(campaign, "--save-front is not supported");
  const auto run = run_cli("run BreastCancer 8 1 --seeds 3");
  expect_usage_error(run, "--seeds is not supported");
  const auto listed = run_cli("list --datasets BreastCancer");
  expect_usage_error(listed, "--datasets is not supported");
}

TEST(Cli, CorruptModelIsRuntimeFailureNotUsageError) {
  const fs::path model =
      fs::temp_directory_path() / "pmlp_cli_test_corrupt.model";
  std::ofstream(model) << "not a model file\n";
  const auto r = run_cli("evaluate " + model.string() + " Cardio");
  fs::remove(model);
  // Corrupt artifacts are runtime failures (exit 1); only argument errors
  // use the usage exit code 2.
  EXPECT_EQ(r.status, 1) << r.out;
  EXPECT_NE(r.out.find("error:"), std::string::npos) << r.out;
}

TEST(Cli, CampaignResumeWithoutCheckpointRejected) {
  const auto r = run_cli("campaign --resume --datasets BreastCancer 8 1");
  expect_usage_error(r, "--resume requires --checkpoint");
}

TEST(Cli, CampaignResumeFromMissingRootRejected) {
  const auto r = run_cli(
      "campaign --resume --datasets BreastCancer --checkpoint "
      "/nonexistent_dir_xyz/camp 8 1");
  expect_usage_error(r, "no campaign checkpoint");
}

TEST(Cli, EvaluateMissingModelExitsNonZero) {
  const auto r = run_cli("evaluate /nonexistent_dir_xyz/m.model Cardio");
  // Runtime (not usage) failure: non-zero, message, no terminate.
  EXPECT_EQ(r.status, 1) << r.out;
  EXPECT_NE(r.out.find("error:"), std::string::npos) << r.out;
}

TEST(Cli, ListSucceeds) {
  const auto r = run_cli("list");
  EXPECT_EQ(r.status, 0) << r.out;
  EXPECT_NE(r.out.find("BreastCancer"), std::string::npos);
}
