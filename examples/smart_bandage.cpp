// Smart-bandage scenario: the paper's motivating application class —
// a disposable health patch classifying a biosignal (Breast-Cancer-like
// binary screening task) that must run from a printed energy harvester.
// The example runs the FlowEngine pipeline, searches the hardware-evaluated
// designs for the *least-power* one that (a) stays within 5% accuracy loss
// and (b) fits the harvester budget at 0.6 V, then reports the feasibility
// ladder of Fig. 5 and a stuck-at fault campaign on the deployable design.
#include <iostream>

#include "pmlp/core/flow_engine.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/hwmodel/power.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/faults.hpp"

int main() {
  using namespace pmlp;

  core::FlowConfig cfg;
  cfg.split_seed = 11;
  cfg.backprop.epochs = 100;
  cfg.backprop.seed = 11;
  cfg.trainer.ga.population = 40;
  cfg.trainer.ga.generations = 30;
  cfg.trainer.ga.seed = 11;
  cfg.refine = false;  // keep the raw GA designs for the ladder
  core::FlowEngine engine(
      datasets::generate(datasets::breast_cancer_spec()),
      mlp::Topology{{10, 3, 2}}, cfg);
  const auto result = engine.run();
  const double base_acc = result.baseline.baseline_test_accuracy;
  const auto& test = result.baseline.test;

  const auto lib_06v = hwmodel::CellLibrary::egfet_1v().at_voltage(0.6);

  std::cout << "Smart bandage design exploration (baseline acc " << base_acc
            << "):\n\n";
  std::cout << "  acc      area cm2   P@1.0V mW  P@0.6V mW  zone@0.6V\n";

  bool found = false;
  for (const auto& p : result.evaluated) {
    if (p.test_accuracy < base_acc - 0.05) continue;
    const auto circuit =
        netlist::build_bespoke_mlp(p.model.to_bespoke_desc("bandage"));
    const auto c06 = circuit.nl.cost(lib_06v);
    const auto zone =
        hwmodel::classify_feasibility(c06.area_cm2(), c06.power_mw());
    std::cout << "  " << p.test_accuracy << "   "
              << p.cost.area_cm2() << "      " << p.cost.power_mw()
              << "     " << c06.power_mw() << "     "
              << hwmodel::zone_name(zone) << "\n";
    if (zone == hwmodel::FeasibilityZone::kHarvester && !found) {
      found = true;
      std::cout << "  ^-- deployable: self-powered printed patch, no "
                   "battery needed\n";
    }
  }
  if (!found) {
    std::cout << "no harvester-compatible design at this GA budget; "
                 "increase generations\n";
    return 1;
  }

  // Disposable printed hardware has high manufacturing defect rates:
  // check how gracefully the cheapest deployable design degrades under
  // single stuck-at faults before committing to fabrication.
  for (const auto& p : result.evaluated) {
    if (p.test_accuracy < base_acc - 0.05) continue;
    const auto circuit =
        netlist::build_bespoke_mlp(p.model.to_bespoke_desc("bandage"));
    std::vector<std::uint8_t> codes(test.codes.begin(), test.codes.end());
    netlist::FaultCampaignConfig fcfg;
    fcfg.max_sites = 120;
    fcfg.max_samples = 80;
    const auto report = netlist::run_fault_campaign(
        circuit, codes, test.labels, test.n_features, fcfg);
    std::cout << "\nfault tolerance of the deployable design ("
              << report.sites_evaluated << " stuck-at sites):\n"
              << "  fault-free acc " << report.fault_free_accuracy
              << ", mean faulty " << report.mean_faulty_accuracy
              << ", worst " << report.worst_faulty_accuracy << ", "
              << report.masked_fraction * 100 << "% of faults masked\n";
    break;
  }
  return 0;
}
