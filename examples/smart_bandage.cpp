// Smart-bandage scenario: the paper's motivating application class —
// a disposable health patch classifying a biosignal (Breast-Cancer-like
// binary screening task) that must run from a printed energy harvester.
// The example searches the GA-AxC Pareto front for the *least-power* design
// that (a) stays within 5% accuracy loss and (b) fits the harvester budget
// at 0.6 V, then reports the feasibility ladder of Fig. 5.
#include <iostream>

#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/hwmodel/power.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/faults.hpp"
#include "pmlp/netlist/from_quant.hpp"

int main() {
  using namespace pmlp;

  const auto raw = datasets::generate(datasets::breast_cancer_spec());
  const auto split = datasets::stratified_split(raw, 0.7, 11);
  const auto train = datasets::quantize_inputs(split.train, 4);
  const auto test = datasets::quantize_inputs(split.test, 4);

  mlp::BackpropConfig bp;
  bp.epochs = 100;
  bp.seed = 11;
  const auto float_net =
      mlp::train_float_mlp(mlp::Topology{{10, 3, 2}}, split.train, bp);
  const auto baseline = mlp::QuantMlp::from_float(float_net);
  const double base_acc = mlp::accuracy(baseline, test);

  const auto& lib_1v = hwmodel::CellLibrary::egfet_1v();
  const auto lib_06v = lib_1v.at_voltage(0.6);

  core::TrainerConfig cfg;
  cfg.ga.population = 40;
  cfg.ga.generations = 30;
  cfg.ga.seed = 11;
  const auto result =
      core::train_ga_axc(mlp::Topology{{10, 3, 2}}, train, baseline, cfg);
  const auto evaluated =
      core::evaluate_hardware(result.estimated_pareto, test, lib_1v);

  std::cout << "Smart bandage design exploration (baseline acc " << base_acc
            << "):\n\n";
  std::cout << "  acc      area cm2   P@1.0V mW  P@0.6V mW  zone@0.6V\n";

  bool found = false;
  for (const auto& p : evaluated) {
    if (p.test_accuracy < base_acc - 0.05) continue;
    const auto circuit =
        netlist::build_bespoke_mlp(p.model.to_bespoke_desc("bandage"));
    const auto c06 = circuit.nl.cost(lib_06v);
    const auto zone =
        hwmodel::classify_feasibility(c06.area_cm2(), c06.power_mw());
    std::cout << "  " << p.test_accuracy << "   "
              << p.cost.area_cm2() << "      " << p.cost.power_mw()
              << "     " << c06.power_mw() << "     "
              << hwmodel::zone_name(zone) << "\n";
    if (zone == hwmodel::FeasibilityZone::kHarvester && !found) {
      found = true;
      std::cout << "  ^-- deployable: self-powered printed patch, no "
                   "battery needed\n";
    }
  }
  if (!found) {
    std::cout << "no harvester-compatible design at this GA budget; "
                 "increase generations\n";
    return 1;
  }

  // Disposable printed hardware has high manufacturing defect rates:
  // check how gracefully the cheapest deployable design degrades under
  // single stuck-at faults before committing to fabrication.
  for (const auto& p : evaluated) {
    if (p.test_accuracy < base_acc - 0.05) continue;
    const auto circuit =
        netlist::build_bespoke_mlp(p.model.to_bespoke_desc("bandage"));
    std::vector<std::uint8_t> codes(test.codes.begin(), test.codes.end());
    netlist::FaultCampaignConfig fcfg;
    fcfg.max_sites = 120;
    fcfg.max_samples = 80;
    const auto report = netlist::run_fault_campaign(
        circuit, codes, test.labels, test.n_features, fcfg);
    std::cout << "\nfault tolerance of the deployable design ("
              << report.sites_evaluated << " stuck-at sites):\n"
              << "  fault-free acc " << report.fault_free_accuracy
              << ", mean faulty " << report.mean_faulty_accuracy
              << ", worst " << report.worst_faulty_accuracy << ", "
              << report.masked_fraction * 100 << "% of faults masked\n";
    break;
  }
  return 0;
}
