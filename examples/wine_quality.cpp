// Wine-quality scenario: the paper's hardest datasets (RedWine/WhiteWine,
// 6-7 heavily overlapping classes). This example contrasts three routes to
// a printed classifier on RedWine:
//   (a) the exact bespoke baseline [2],
//   (b) post-training approximation (TC'23 [5]),
//   (c) our in-training GA-AxC approximation,
// showing why embedding the approximations in training wins (paper Fig. 4:
// 470x area reduction on RedWine vs 5% loss).
#include <iostream>

#include "pmlp/baselines/tc23.hpp"
#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/from_quant.hpp"

int main() {
  using namespace pmlp;

  const auto raw = datasets::generate(datasets::red_wine_spec());
  const auto split = datasets::stratified_split(raw, 0.7, 3);
  const auto train = datasets::quantize_inputs(split.train, 4);
  const auto test = datasets::quantize_inputs(split.test, 4);
  const mlp::Topology topo{{11, 2, 6}};  // Table I RedWine topology

  mlp::BackpropConfig bp;
  bp.epochs = 150;
  bp.seed = 3;
  const auto float_net = mlp::train_float_mlp(topo, split.train, bp);
  const auto baseline = mlp::QuantMlp::from_float(float_net);
  const auto& lib = hwmodel::CellLibrary::egfet_1v();

  // (a) exact baseline.
  const auto base_cost =
      netlist::build_bespoke_mlp(netlist::to_bespoke_desc(baseline, "exact"))
          .nl.cost(lib);
  const double base_acc = mlp::accuracy(baseline, test);
  std::cout << "(a) exact bespoke [2]:  acc " << base_acc << ", area "
            << base_cost.area_cm2() << " cm2, power " << base_cost.power_mw()
            << " mW\n";

  // (b) post-training approximation, TC'23-style.
  const auto tc = baselines::run_tc23(baseline, train, test, lib);
  std::cout << "(b) post-training [5]:  acc " << tc.test_accuracy << ", area "
            << tc.cost.area_cm2() << " cm2 ("
            << base_cost.area_mm2 / tc.cost.area_mm2
            << "x), config: popcount<=" << tc.max_popcount << ", truncate "
            << tc.truncation << " columns\n";

  // (c) ours: approximation inside the training loop.
  core::TrainerConfig cfg;
  cfg.ga.population = 40;
  cfg.ga.generations = 30;
  cfg.ga.seed = 3;
  const auto result = core::train_ga_axc(topo, train, baseline, cfg);
  const auto evaluated =
      core::evaluate_hardware(result.estimated_pareto, test, lib);
  const auto best = core::best_within_loss(evaluated, base_acc, 0.05);
  if (!best) {
    std::cout << "(c) ours: no design within 5% at this budget\n";
    return 1;
  }
  std::cout << "(c) ours (GA-AxC):      acc " << best->test_accuracy
            << ", area " << best->cost.area_cm2() << " cm2 ("
            << base_cost.area_mm2 / best->cost.area_mm2 << "x), power "
            << best->cost.power_mw() << " mW ("
            << base_cost.power_uw / best->cost.power_uw << "x)\n";

  std::cout << "\nwhy (c) beats (b): the GA retrains signs/exponents/biases "
               "around the pruning masks instead of approximating a frozen "
               "model, so far more adder columns can be removed at the same "
               "accuracy.\n";
  return 0;
}
