// Wine-quality scenario: the paper's hardest datasets (RedWine/WhiteWine,
// 6-7 heavily overlapping classes). This example contrasts three routes to
// a printed classifier on RedWine:
//   (a) the exact bespoke baseline [2] (the FlowEngine's baseline stage),
//   (b) post-training approximation (TC'23 [5]) on that same baseline,
//   (c) our in-training GA-AxC approximation (the remaining stages),
// showing why embedding the approximations in training wins (paper Fig. 4:
// 470x area reduction on RedWine vs 5% loss).
#include <iostream>

#include "pmlp/baselines/tc23.hpp"
#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/suite.hpp"

int main() {
  using namespace pmlp;

  core::FlowConfig cfg;
  cfg.split_seed = 3;
  cfg.backprop.epochs = 150;
  cfg.backprop.seed = 3;
  cfg.trainer.ga.population = 40;
  cfg.trainer.ga.generations = 30;
  cfg.trainer.ga.seed = 3;
  cfg.refine = false;
  core::FlowEngine engine(core::load_paper_dataset("RedWine"),
                          core::paper_topology("RedWine"), cfg);

  // (a) exact baseline — just the first three stages.
  const auto& baseline = engine.baseline();
  const auto& split = engine.split();
  const auto& lib = hwmodel::CellLibrary::egfet_1v();
  std::cout << "(a) exact bespoke [2]:  acc " << baseline.test_accuracy
            << ", area " << baseline.cost.area_cm2() << " cm2, power "
            << baseline.cost.power_mw() << " mW\n";

  // (b) post-training approximation, TC'23-style, on the same baseline.
  const auto tc =
      baselines::run_tc23(baseline.net, split.train, split.test, lib);
  std::cout << "(b) post-training [5]:  acc " << tc.test_accuracy << ", area "
            << tc.cost.area_cm2() << " cm2 ("
            << baseline.cost.area_mm2 / tc.cost.area_mm2
            << "x), config: popcount<=" << tc.max_popcount << ", truncate "
            << tc.truncation << " columns\n";

  // (c) ours: approximation inside the training loop (remaining stages).
  const auto result = engine.run();
  if (!result.best) {
    std::cout << "(c) ours: no design within 5% at this budget\n";
    return 1;
  }
  std::cout << "(c) ours (GA-AxC):      acc " << result.best->test_accuracy
            << ", area " << result.best->cost.area_cm2() << " cm2 ("
            << result.area_reduction << "x), power "
            << result.best->cost.power_mw() << " mW ("
            << result.power_reduction << "x)\n";

  std::cout << "\nwhy (c) beats (b): the GA retrains signs/exponents/biases "
               "around the pruning masks instead of approximating a frozen "
               "model, so far more adder columns can be removed at the same "
               "accuracy.\n";
  return 0;
}
