// Quickstart: the complete Fig. 2 flow in ~60 lines.
//   1. make a dataset (synthetic Breast-Cancer stand-in),
//   2. train + quantize the exact bespoke baseline [2],
//   3. run GA-AxC hardware-aware training (NSGA-II over masks/signs/
//      exponents/biases),
//   4. "synthesize" the Pareto candidates and pick the best design within
//      5% accuracy loss,
//   5. print its cost and export Verilog.
#include <fstream>
#include <iostream>

#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/from_quant.hpp"
#include "pmlp/netlist/verilog.hpp"

int main() {
  using namespace pmlp;

  // 1. Dataset: 10 features, 2 classes, normalized to [0,1], 70/30 split,
  //    4-bit quantized inputs (the printed circuit's native format).
  const auto raw = datasets::generate(datasets::breast_cancer_spec());
  const auto split = datasets::stratified_split(raw, 0.7, 1);
  const auto train = datasets::quantize_inputs(split.train, 4);
  const auto test = datasets::quantize_inputs(split.test, 4);

  // 2. Exact bespoke baseline: float MLP -> 8-bit weights / 4-bit inputs.
  mlp::BackpropConfig bp;
  bp.epochs = 100;
  const auto float_net =
      mlp::train_float_mlp(mlp::Topology{{10, 3, 2}}, split.train, bp);
  const auto baseline = mlp::QuantMlp::from_float(float_net);
  const auto& lib = hwmodel::CellLibrary::egfet_1v();
  const auto base_cost =
      netlist::build_bespoke_mlp(netlist::to_bespoke_desc(baseline, "exact"))
          .nl.cost(lib);
  const double base_acc = mlp::accuracy(baseline, test);
  std::cout << "baseline: acc " << base_acc << ", area "
            << base_cost.area_cm2() << " cm2, power " << base_cost.power_mw()
            << " mW\n";

  // 3. GA-AxC training (Eq. 3: minimize [error, FA-count area]).
  core::TrainerConfig cfg;
  cfg.ga.population = 40;
  cfg.ga.generations = 25;
  const auto result =
      core::train_ga_axc(mlp::Topology{{10, 3, 2}}, train, baseline, cfg);
  std::cout << "GA-AxC: " << result.evaluations << " evaluations, "
            << result.estimated_pareto.size() << " estimated-Pareto points\n";

  // 4. Hardware sign-off + Table II pick.
  const auto evaluated =
      core::evaluate_hardware(result.estimated_pareto, test, lib);
  const auto best = core::best_within_loss(evaluated, base_acc, 0.05);
  if (!best) {
    std::cout << "no design met the 5% bound at this tiny GA budget\n";
    return 1;
  }
  std::cout << "best within 5% loss: acc " << best->test_accuracy << ", area "
            << best->cost.area_cm2() << " cm2 ("
            << base_cost.area_mm2 / best->cost.area_mm2 << "x smaller), power "
            << best->cost.power_mw() << " mW ("
            << base_cost.power_uw / best->cost.power_uw << "x lower)\n";

  // 5. Export the bespoke circuit as Verilog.
  const auto circuit =
      netlist::build_bespoke_mlp(best->model.to_bespoke_desc("approx_mlp"));
  std::ofstream out("approx_mlp.v");
  netlist::emit_verilog(circuit.nl, "approx_mlp", out);
  std::cout << "wrote approx_mlp.v (" << circuit.nl.gates().size()
            << " cells)\n";
  return 0;
}
