// Quickstart: the complete Fig. 2 flow through the staged FlowEngine.
//   1. make a dataset (synthetic Breast-Cancer stand-in),
//   2. run the pipeline — split/quantize, float training, exact bespoke
//      baseline [2], GA-AxC hardware-aware training, greedy refinement,
//      gate-level pricing/verification, Table II pick — watching each
//      stage report its wall time,
//   3. print the picked design's cost and export Verilog.
#include <fstream>
#include <iostream>

#include "pmlp/core/flow_engine.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/verilog.hpp"

int main() {
  using namespace pmlp;

  // 1. Dataset: 10 features, 2 classes, normalized to [0,1]. The engine
  //    does the 70/30 stratified split and 4-bit input quantization itself.
  const auto raw = datasets::generate(datasets::breast_cancer_spec());

  // 2. The whole pipeline as one engine run with a progress callback.
  core::FlowConfig cfg;
  cfg.backprop.epochs = 100;
  cfg.trainer.ga.population = 40;
  cfg.trainer.ga.generations = 25;
  core::FlowEngine engine(raw, mlp::Topology{{10, 3, 2}}, cfg);
  engine.set_progress([](const core::StageReport& r) {
    std::cout << "stage " << core::flow_stage_name(r.stage) << ": "
              << r.wall_seconds << " s (" << r.items << " items)\n";
  });
  const auto result = engine.run();

  std::cout << "\nbaseline: acc " << result.baseline.baseline_test_accuracy
            << ", area " << result.baseline.baseline_cost.area_cm2()
            << " cm2, power " << result.baseline.baseline_cost.power_mw()
            << " mW\n";
  std::cout << "GA-AxC: " << result.training.evaluations << " evaluations, "
            << result.front.size() << " true-Pareto points\n";
  if (!result.best) {
    std::cout << "no design met the 5% bound at this tiny GA budget\n";
    return 1;
  }
  std::cout << "best within 5% loss: acc " << result.best->test_accuracy
            << ", area " << result.best->cost.area_cm2() << " cm2 ("
            << result.area_reduction << "x smaller), power "
            << result.best->cost.power_mw() << " mW ("
            << result.power_reduction << "x lower)\n";

  // 3. Export the bespoke circuit as Verilog.
  const auto circuit = netlist::build_bespoke_mlp(
      result.best->model.to_bespoke_desc("approx_mlp"));
  std::ofstream out("approx_mlp.v");
  netlist::emit_verilog(circuit.nl, "approx_mlp", out);
  std::cout << "wrote approx_mlp.v (" << circuit.nl.gates().size()
            << " cells)\n";
  return 0;
}
