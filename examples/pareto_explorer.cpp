// Pareto explorer: runs GA-AxC on any of the five paper datasets (argv[1],
// default Cardio) and dumps the full estimated + hardware-evaluated Pareto
// fronts as CSV to stdout — the raw material of the paper's accuracy-area
// trade-off analysis (Fig. 2 right).
//
// Usage: pareto_explorer [BreastCancer|Cardio|Pendigits|RedWine|WhiteWine]
//        [population] [generations]
#include <iostream>
#include <string>

#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/mlp/topology.hpp"
#include "pmlp/netlist/from_quant.hpp"
#include "pmlp/netlist/builders.hpp"

int main(int argc, char** argv) {
  using namespace pmlp;
  const std::string name = argc > 1 ? argv[1] : "Cardio";
  const int population = argc > 2 ? std::atoi(argv[2]) : 40;
  const int generations = argc > 3 ? std::atoi(argv[3]) : 30;

  datasets::SyntheticSpec spec;
  bool found = false;
  for (const auto& s : datasets::paper_suite()) {
    if (s.name == name) {
      spec = s;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "unknown dataset " << name << "\n";
    return 2;
  }
  const auto& row = mlp::paper_row(name);

  const auto raw = datasets::generate(spec);
  const auto split = datasets::stratified_split(raw, 0.7, 1);
  const auto train = datasets::quantize_inputs(split.train, 4);
  const auto test = datasets::quantize_inputs(split.test, 4);

  mlp::BackpropConfig bp;
  bp.epochs = 150;
  const auto float_net = mlp::train_float_mlp(row.topology, split.train, bp);
  const auto baseline = mlp::QuantMlp::from_float(float_net);
  const auto& lib = hwmodel::CellLibrary::egfet_1v();
  const auto base_cost =
      netlist::build_bespoke_mlp(netlist::to_bespoke_desc(baseline, "exact"))
          .nl.cost(lib);

  core::TrainerConfig cfg;
  cfg.ga.population = population;
  cfg.ga.generations = generations;
  std::cerr << "training " << name << " " << row.topology.to_string()
            << " with pop=" << population << " gens=" << generations << "\n";
  const auto result = core::train_ga_axc(row.topology, train, baseline, cfg);
  const auto evaluated =
      core::evaluate_hardware(result.estimated_pareto, test, lib);

  std::cout << "dataset,point,train_acc,test_acc,fa_area,area_cm2,power_mw,"
               "norm_area,norm_power,functional_match\n";
  for (std::size_t i = 0; i < evaluated.size(); ++i) {
    const auto& est = result.estimated_pareto[i];
    const auto& hw = evaluated[i];
    std::cout << name << ',' << i << ',' << est.train_accuracy << ','
              << hw.test_accuracy << ',' << hw.fa_area << ','
              << hw.cost.area_cm2() << ',' << hw.cost.power_mw() << ','
              << hw.cost.area_mm2 / base_cost.area_mm2 << ','
              << hw.cost.power_uw / base_cost.power_uw << ','
              << (hw.functional_match ? 1 : 0) << "\n";
  }
  return 0;
}
