// Pareto explorer: runs GA-AxC on any of the five paper datasets (argv[1],
// default Cardio) and dumps the full estimated + hardware-evaluated Pareto
// fronts as CSV to stdout — the raw material of the paper's accuracy-area
// trade-off analysis (Fig. 2 right). A thin FlowEngine wrapper; refinement
// is disabled so the CSV shows the raw GA front.
//
// Usage: pareto_explorer [BreastCancer|Cardio|Pendigits|RedWine|WhiteWine]
//        [population] [generations]
#include <iostream>
#include <string>

#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmlp;
  const std::string name = argc > 1 ? argv[1] : "Cardio";
  const int population = argc > 2 ? std::atoi(argv[2]) : 40;
  const int generations = argc > 3 ? std::atoi(argv[3]) : 30;

  core::FlowConfig cfg;
  cfg.backprop.epochs = 150;
  cfg.trainer.ga.population = population;
  cfg.trainer.ga.generations = generations;
  cfg.refine = false;  // dump the raw GA front

  datasets::Dataset data;
  try {
    data = core::load_paper_dataset(name);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  std::cerr << "training " << name << " "
            << core::paper_topology(name).to_string()
            << " with pop=" << population << " gens=" << generations << "\n";
  core::FlowEngine engine(std::move(data), core::paper_topology(name), cfg);
  const auto result = engine.run();
  const auto& base_cost = result.baseline.baseline_cost;

  std::cout << "dataset,point,train_acc,test_acc,fa_area,area_cm2,power_mw,"
               "norm_area,norm_power,functional_match\n";
  for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
    const auto& est = result.training.estimated_pareto[i];
    const auto& hw = result.evaluated[i];
    std::cout << name << ',' << i << ',' << est.train_accuracy << ','
              << hw.test_accuracy << ',' << hw.fa_area << ','
              << hw.cost.area_cm2() << ',' << hw.cost.power_mw() << ','
              << hw.cost.area_mm2 / base_cost.area_mm2 << ','
              << hw.cost.power_uw / base_cost.power_uw << ','
              << (hw.functional_match ? 1 : 0) << "\n";
  }
  return 0;
}
