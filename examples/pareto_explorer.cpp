// Pareto explorer: runs GA-AxC on one of the five paper datasets (argv[1],
// default Cardio) — or on ALL of them with "all" — and dumps the full
// estimated + hardware-evaluated Pareto fronts as CSV to stdout: the raw
// material of the paper's accuracy-area trade-off analysis (Fig. 2 right).
// Refinement is disabled so the CSV shows the raw GA front.
//
// The "all" mode schedules the five flows concurrently over ONE shared
// worker pool through the CampaignRunner (campaign.hpp) instead of looping
// datasets one flow at a time; per-dataset rows are bit-identical to five
// single-dataset invocations.
//
// Usage: pareto_explorer [BreastCancer|Cardio|Pendigits|RedWine|WhiteWine|all]
//        [population] [generations]
#include <iostream>
#include <string>

#include "pmlp/core/campaign.hpp"
#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/suite.hpp"
#include "pmlp/mlp/topology.hpp"

namespace {

pmlp::core::FlowConfig explorer_config(int population, int generations) {
  pmlp::core::FlowConfig cfg;
  cfg.backprop.epochs = 150;
  cfg.trainer.ga.population = population;
  cfg.trainer.ga.generations = generations;
  cfg.refine = false;  // dump the raw GA front
  return cfg;
}

void dump_csv(const std::string& name, const pmlp::core::FlowResult& result) {
  const auto& base_cost = result.baseline.baseline_cost;
  for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
    const auto& est = result.training.estimated_pareto[i];
    const auto& hw = result.evaluated[i];
    std::cout << name << ',' << i << ',' << est.train_accuracy << ','
              << hw.test_accuracy << ',' << hw.fa_area << ','
              << hw.cost.area_cm2() << ',' << hw.cost.power_mw() << ','
              << hw.cost.area_mm2 / base_cost.area_mm2 << ','
              << hw.cost.power_uw / base_cost.power_uw << ','
              << (hw.functional_match ? 1 : 0) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pmlp;
  const std::string name = argc > 1 ? argv[1] : "Cardio";
  const int population = argc > 2 ? std::atoi(argv[2]) : 40;
  const int generations = argc > 3 ? std::atoi(argv[3]) : 30;
  const auto cfg = explorer_config(population, generations);

  // The CSV header goes out only once the arguments validate, so a failed
  // invocation redirected to a file leaves it empty, not header-only.
  const char* kCsvHeader =
      "dataset,point,train_acc,test_acc,fa_area,area_cm2,power_mw,"
      "norm_area,norm_power,functional_match\n";

  if (name == "all") {
    core::CampaignRunner runner(core::CampaignConfig{});  // pool = all cores
    try {
      for (const auto& row : mlp::paper_table1()) {
        core::CampaignFlowSpec spec;
        spec.name = row.dataset;
        spec.dataset = row.dataset;
        spec.data = core::load_paper_dataset(row.dataset);
        spec.topology = row.topology;
        spec.config = cfg;
        runner.add_flow(std::move(spec));
      }
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    std::cout << kCsvHeader;
    std::cerr << "training all 5 datasets concurrently (pop=" << population
              << " gens=" << generations << ")\n";
    const auto campaign = runner.run();
    int rc = 0;
    for (const auto& flow : campaign.flows) {
      if (flow.status != core::CampaignFlowStatus::kDone) {
        std::cerr << flow.name << " "
                  << core::campaign_flow_status_name(flow.status) << ": "
                  << flow.error << "\n";
        rc = 1;
        continue;
      }
      dump_csv(flow.name, *flow.result);
    }
    std::cerr << "campaign: " << campaign.completed << "/"
              << campaign.flows.size() << " flows in "
              << campaign.wall_seconds << " s on " << campaign.n_threads
              << " workers\n";
    return rc;
  }

  datasets::Dataset data;
  try {
    data = core::load_paper_dataset(name);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  std::cout << kCsvHeader;
  std::cerr << "training " << name << " "
            << core::paper_topology(name).to_string()
            << " with pop=" << population << " gens=" << generations << "\n";
  core::FlowEngine engine(std::move(data), core::paper_topology(name), cfg);
  dump_csv(name, engine.run());
  return 0;
}
