// Verilog-export scenario: run the full flow on a chosen dataset and emit
// the hand-off artifacts a hardware team would take to a real printed-EDA
// flow — the trained model file, the optimized DUT netlist, and a
// self-checking testbench with recorded + random stimulus — through the
// verified core::rtl_export path: one circuit build, the optimized netlist
// both ships as the DUT and produces the golden predictions, and the
// emitted RTL is cross-checked in-process against the C++ oracle and the
// gate-level simulator (plus an external iverilog/verilator run when one
// is installed).
//
// The flow runs through the FlowEngine with a checkpoint directory under
// the output dir, so re-running (e.g. after an interrupt, or to re-export
// with different budgets downstream) resumes from the completed stages.
//
// Usage: verilog_export [dataset=BreastCancer] [outdir=.]
#include <filesystem>
#include <iostream>

#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/rtl_export.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/core/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmlp;
  const std::string name = argc > 1 ? argv[1] : "BreastCancer";
  const std::filesystem::path outdir = argc > 2 ? argv[2] : ".";

  datasets::Dataset data;
  try {
    data = core::load_paper_dataset(name);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  core::FlowConfig cfg;
  cfg.backprop.epochs = 120;
  cfg.trainer.ga.population = 80;
  cfg.trainer.ga.generations = 200;
  std::cerr << "running flow on " << name << " "
            << core::paper_topology(name).to_string() << "...\n";
  core::FlowEngine engine(std::move(data), core::paper_topology(name), cfg);
  engine.set_checkpoint_dir((outdir / (name + "_ckpt")).string());
  engine.set_progress([](const core::StageReport& r) {
    std::cerr << "  stage " << core::flow_stage_name(r.stage) << ": "
              << r.wall_seconds << " s" << (r.reused ? " (resumed)" : "")
              << "\n";
  });
  const auto result = engine.run();
  // Prefer the Table II pick; fall back to the most accurate verified
  // design so the export always produces artifacts.
  core::HwEvaluatedPoint chosen;
  if (result.best) {
    chosen = *result.best;
    std::cerr << "picked design (within 5% loss): ";
  } else {
    double best_acc = -1.0;
    for (const auto& e : result.evaluated) {
      if (e.test_accuracy > best_acc) {
        best_acc = e.test_accuracy;
        chosen = e;
      }
    }
    std::cerr << "no design met the 5% bound; exporting most accurate: ";
  }
  std::cerr << "acc " << chosen.test_accuracy << ", area "
            << chosen.cost.area_cm2() << " cm2 ("
            << result.baseline.baseline_cost.area_mm2 / chosen.cost.area_mm2
            << "x)\n";

  // 1. Model file (reloadable with core::load_model_file).
  const auto model_path = outdir / (name + ".model");
  core::save_model_file(chosen.model, model_path.string());

  // 2. Verified RTL: DUT + testbench + manifest, recorded stimulus from
  // the flow's own test split plus LFSR random vectors, three-way
  // cross-checked before anything is written; an installed simulator runs
  // the testbench too.
  const auto& test = result.baseline.test;
  core::RtlPointSpec spec;
  spec.name = name;
  spec.model = chosen.model;
  spec.recorded = test.codes;
  const auto report = core::verify_rtl({&spec, 1}, outdir.string());
  const auto& point = report.points.front();

  std::cout << "wrote " << model_path << ", " << point.dut_file << " ("
            << point.gates << " cells), " << point.tb_file << " ("
            << point.n_vectors() << " vectors), " << report.manifest_file
            << "; sim " << core::rtl_sim_outcome_name(point.sim)
            << (report.simulator.empty() ? " (no simulator found)"
                                         : " (" + report.simulator + ")")
            << "\n";
  return point.sim == core::RtlSimOutcome::kFail ||
                 point.sim == core::RtlSimOutcome::kError
             ? 1
             : 0;
}
