// Verilog-export scenario: run the full flow on a chosen dataset and emit
// the hand-off artifacts a hardware team would take to a real printed-EDA
// flow — the trained model file, the optimized DUT netlist, and a
// self-checking testbench with recorded stimulus/expected classes.
//
// The flow runs through the FlowEngine with a checkpoint directory under
// the output dir, so re-running (e.g. after an interrupt, or to re-export
// with different budgets downstream) resumes from the completed stages.
//
// Usage: verilog_export [dataset=BreastCancer] [outdir=.]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/core/suite.hpp"
#include "pmlp/netlist/opt.hpp"
#include "pmlp/netlist/testbench.hpp"
#include "pmlp/netlist/verilog.hpp"

int main(int argc, char** argv) {
  using namespace pmlp;
  const std::string name = argc > 1 ? argv[1] : "BreastCancer";
  const std::filesystem::path outdir = argc > 2 ? argv[2] : ".";

  datasets::Dataset data;
  try {
    data = core::load_paper_dataset(name);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  core::FlowConfig cfg;
  cfg.backprop.epochs = 120;
  cfg.trainer.ga.population = 80;
  cfg.trainer.ga.generations = 200;
  std::cerr << "running flow on " << name << " "
            << core::paper_topology(name).to_string() << "...\n";
  core::FlowEngine engine(std::move(data), core::paper_topology(name), cfg);
  engine.set_checkpoint_dir((outdir / (name + "_ckpt")).string());
  engine.set_progress([](const core::StageReport& r) {
    std::cerr << "  stage " << core::flow_stage_name(r.stage) << ": "
              << r.wall_seconds << " s" << (r.reused ? " (resumed)" : "")
              << "\n";
  });
  const auto result = engine.run();
  // Prefer the Table II pick; fall back to the most accurate verified
  // design so the export always produces artifacts.
  core::HwEvaluatedPoint chosen;
  if (result.best) {
    chosen = *result.best;
    std::cerr << "picked design (within 5% loss): ";
  } else {
    double best_acc = -1.0;
    for (const auto& e : result.evaluated) {
      if (e.test_accuracy > best_acc) {
        best_acc = e.test_accuracy;
        chosen = e;
      }
    }
    std::cerr << "no design met the 5% bound; exporting most accurate: ";
  }
  std::cerr << "acc " << chosen.test_accuracy << ", area "
            << chosen.cost.area_cm2() << " cm2 ("
            << result.baseline.baseline_cost.area_mm2 / chosen.cost.area_mm2
            << "x)\n";

  // 1. Model file (reloadable with core::load_model_file).
  const auto model_path = outdir / (name + ".model");
  core::save_model_file(chosen.model, model_path.string());

  // 2. Optimized DUT netlist as Verilog.
  auto circuit =
      netlist::build_bespoke_mlp(chosen.model.to_bespoke_desc(name));
  netlist::OptStats stats;
  circuit.nl = netlist::optimize(circuit.nl, &stats);
  std::cerr << "optimize: removed " << stats.total_removed() << " cells, "
            << stats.gates_remaining << " remain\n";

  // Rebuild I/O metadata is unchanged by optimize (names preserved), but
  // bus net ids moved; re-emit from a fresh unoptimized build for the
  // testbench's golden predictions and keep the optimized netlist as DUT.
  const auto golden =
      netlist::build_bespoke_mlp(chosen.model.to_bespoke_desc(name));

  const auto dut_path = outdir / (name + ".v");
  {
    std::ofstream os(dut_path);
    netlist::emit_verilog(circuit.nl, name, os);
  }

  // 3. Self-checking testbench over the first test samples.
  const auto& test = result.baseline.test;
  std::vector<std::uint8_t> codes;
  const std::size_t n_vec = std::min<std::size_t>(test.size(), 64);
  for (std::size_t i = 0; i < n_vec; ++i) {
    const auto row_codes = test.row(i);
    codes.insert(codes.end(), row_codes.begin(), row_codes.end());
  }
  netlist::TestbenchOptions tb;
  tb.dut_name = name;
  const auto tb_path = outdir / (name + "_tb.v");
  {
    std::ofstream os(tb_path);
    netlist::emit_testbench(golden, test.n_features, codes, tb, os);
  }

  std::cout << "wrote " << model_path << ", " << dut_path << " ("
            << circuit.nl.gates().size() << " cells), " << tb_path << " ("
            << n_vec << " vectors)\n";
  return 0;
}
