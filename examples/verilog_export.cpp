// Verilog-export scenario: run the full flow on a chosen dataset and emit
// the hand-off artifacts a hardware team would take to a real printed-EDA
// flow — the trained model file, the optimized DUT netlist, and a
// self-checking testbench with recorded stimulus/expected classes.
//
// Usage: verilog_export [dataset=BreastCancer] [outdir=.]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "pmlp/core/flow.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/topology.hpp"
#include "pmlp/netlist/opt.hpp"
#include "pmlp/netlist/testbench.hpp"
#include "pmlp/netlist/verilog.hpp"

int main(int argc, char** argv) {
  using namespace pmlp;
  const std::string name = argc > 1 ? argv[1] : "BreastCancer";
  const std::filesystem::path outdir = argc > 2 ? argv[2] : ".";

  datasets::SyntheticSpec spec;
  bool found = false;
  for (const auto& s : datasets::paper_suite()) {
    if (s.name == name) {
      spec = s;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "unknown dataset " << name << "\n";
    return 2;
  }

  core::FlowConfig cfg;
  cfg.backprop.epochs = 120;
  cfg.trainer.ga.population = 80;
  cfg.trainer.ga.generations = 200;
  const auto& row = mlp::paper_row(name);
  std::cerr << "running flow on " << name << " " << row.topology.to_string()
            << "...\n";
  const auto result =
      core::run_flow(datasets::generate(spec), row.topology, cfg);
  // Prefer the Table II pick; fall back to the most accurate verified
  // design so the export always produces artifacts.
  core::HwEvaluatedPoint chosen;
  if (result.best) {
    chosen = *result.best;
    std::cerr << "picked design (within 5% loss): ";
  } else {
    double best_acc = -1.0;
    for (const auto& e : result.evaluated) {
      if (e.test_accuracy > best_acc) {
        best_acc = e.test_accuracy;
        chosen = e;
      }
    }
    std::cerr << "no design met the 5% bound; exporting most accurate: ";
  }
  std::cerr << "acc " << chosen.test_accuracy << ", area "
            << chosen.cost.area_cm2() << " cm2 ("
            << result.baseline.baseline_cost.area_mm2 / chosen.cost.area_mm2
            << "x)\n";

  // 1. Model file (reloadable with core::load_model_file).
  const auto model_path = outdir / (name + ".model");
  core::save_model_file(chosen.model, model_path.string());

  // 2. Optimized DUT netlist as Verilog.
  auto circuit =
      netlist::build_bespoke_mlp(chosen.model.to_bespoke_desc(name));
  netlist::OptStats stats;
  circuit.nl = netlist::optimize(circuit.nl, &stats);
  std::cerr << "optimize: removed " << stats.total_removed() << " cells, "
            << stats.gates_remaining << " remain\n";

  // Rebuild I/O metadata is unchanged by optimize (names preserved), but
  // bus net ids moved; re-emit from a fresh unoptimized build for the
  // testbench's golden predictions and keep the optimized netlist as DUT.
  const auto golden =
      netlist::build_bespoke_mlp(chosen.model.to_bespoke_desc(name));

  const auto dut_path = outdir / (name + ".v");
  {
    std::ofstream os(dut_path);
    netlist::emit_verilog(circuit.nl, name, os);
  }

  // 3. Self-checking testbench over the first test samples.
  const auto& test = result.baseline.test;
  std::vector<std::uint8_t> codes;
  const std::size_t n_vec = std::min<std::size_t>(test.size(), 64);
  for (std::size_t i = 0; i < n_vec; ++i) {
    const auto row_codes = test.row(i);
    codes.insert(codes.end(), row_codes.begin(), row_codes.end());
  }
  netlist::TestbenchOptions tb;
  tb.dut_name = name;
  const auto tb_path = outdir / (name + "_tb.v");
  {
    std::ofstream os(tb_path);
    netlist::emit_testbench(golden, test.n_features, codes, tb, os);
  }

  std::cout << "wrote " << model_path << ", " << dut_path << " ("
            << circuit.nl.gates().size() << " cells), " << tb_path << " ("
            << n_vec << " vectors)\n";
  return 0;
}
