#include "bench_common.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "pmlp/core/flow.hpp"
#include "pmlp/core/suite.hpp"

namespace pmlp::bench {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

core::FlowConfig default_flow_config(std::uint64_t seed) {
  core::FlowConfig cfg;
  cfg.split_seed = 1;
  cfg.backprop.epochs = env_int("PMLP_EPOCHS", 150);
  cfg.backprop.seed = 1234;
  cfg.trainer.ga.population = env_int("PMLP_POP", 120);
  cfg.trainer.ga.generations = env_int("PMLP_GENS", 600);
  cfg.trainer.n_threads = env_int("PMLP_THREADS", 0);
  cfg.trainer.problem.eval_cache_capacity = env_int("PMLP_CACHE", 4096);
  cfg.trainer.ga.seed = seed;
  cfg.refine = env_int("PMLP_REFINE", 1) != 0;
  cfg.hardware.equivalence_samples = 16;
  return cfg;
}

Prepared prepare(const std::string& dataset_name) {
  Prepared p;
  p.paper = mlp::paper_row(dataset_name);

  const auto data = core::load_paper_dataset(dataset_name);
  auto artifacts =
      core::build_baseline(data, p.paper.topology, default_flow_config(1));
  p.train_raw = std::move(artifacts.train_raw);
  p.test_raw = std::move(artifacts.test_raw);
  p.train = std::move(artifacts.train);
  p.test = std::move(artifacts.test);
  p.float_net = std::move(artifacts.float_net);
  p.baseline = std::move(artifacts.baseline);
  p.baseline_cost = artifacts.baseline_cost;
  p.baseline_train_accuracy = artifacts.baseline_train_accuracy;
  p.baseline_test_accuracy = artifacts.baseline_test_accuracy;
  return p;
}

std::vector<Prepared> prepare_suite() {
  std::vector<Prepared> out;
  for (const auto& row : mlp::paper_table1()) {
    out.push_back(prepare(row.dataset));
  }
  return out;
}

core::TrainerConfig default_trainer_config(std::uint64_t seed) {
  return default_flow_config(seed).trainer;
}

core::FlowEngine make_engine(const Prepared& p, std::uint64_t seed) {
  core::FlowEngine engine(datasets::Dataset{}, p.paper.topology,
                          default_flow_config(seed));
  core::SplitArtifacts split;
  split.train_raw = p.train_raw;
  split.test_raw = p.test_raw;
  split.train = p.train;
  split.test = p.test;
  engine.provide_split(std::move(split));
  engine.provide_float_net(p.float_net);
  core::BaselinePricing pricing;
  pricing.net = p.baseline;
  pricing.cost = p.baseline_cost;
  pricing.train_accuracy = p.baseline_train_accuracy;
  pricing.test_accuracy = p.baseline_test_accuracy;
  engine.provide_baseline(std::move(pricing));
  return engine;
}

OursOutcome run_ours(const Prepared& p, std::uint64_t seed) {
  auto engine = make_engine(p, seed);
  auto result = std::move(engine).run();

  OursOutcome out;
  out.training = std::move(result.training);
  out.evaluated = std::move(result.evaluated);
  out.stages = std::move(result.stages);
  if (result.best) {
    out.best = *result.best;
  } else {
    // Fall back to the most accurate evaluated design (small GA budgets on
    // the hard wine datasets may miss the 5% bound by a hair).
    double best_acc = -1.0;
    for (const auto& e : out.evaluated) {
      if (e.test_accuracy > best_acc) {
        best_acc = e.test_accuracy;
        out.best = e;
      }
    }
  }
  return out;
}

std::string fmt(double v, int width, int precision) {
  std::ostringstream os;
  os << std::setw(width) << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt(const std::string& s, int width) {
  std::ostringstream os;
  if (width < 0) {
    os << std::left << std::setw(-width) << s;
  } else {
    os << std::setw(width) << s;
  }
  return os.str();
}

}  // namespace pmlp::bench
