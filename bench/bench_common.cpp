#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "pmlp/core/flow.hpp"

namespace pmlp::bench {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

namespace {

datasets::SyntheticSpec spec_for(const std::string& name) {
  for (const auto& s : datasets::paper_suite()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

/// Library flow config honoring the bench environment knobs.
core::FlowConfig flow_config(std::uint64_t seed) {
  core::FlowConfig cfg;
  cfg.split_seed = 1;
  cfg.backprop.epochs = env_int("PMLP_EPOCHS", 150);
  cfg.backprop.seed = 1234;
  cfg.trainer.ga.population = env_int("PMLP_POP", 120);
  cfg.trainer.ga.generations = env_int("PMLP_GENS", 600);
  cfg.trainer.n_threads = env_int("PMLP_THREADS", 0);
  cfg.trainer.problem.eval_cache_capacity = env_int("PMLP_CACHE", 4096);
  cfg.trainer.ga.seed = seed;
  cfg.refine = env_int("PMLP_REFINE", 1) != 0;
  cfg.hardware.equivalence_samples = 16;
  return cfg;
}

}  // namespace

Prepared prepare(const std::string& dataset_name) {
  Prepared p;
  p.paper = mlp::paper_row(dataset_name);

  const auto data = datasets::generate(spec_for(dataset_name));
  auto artifacts =
      core::build_baseline(data, p.paper.topology, flow_config(1));
  p.train_raw = std::move(artifacts.train_raw);
  p.test_raw = std::move(artifacts.test_raw);
  p.train = std::move(artifacts.train);
  p.test = std::move(artifacts.test);
  p.float_net = std::move(artifacts.float_net);
  p.baseline = std::move(artifacts.baseline);
  p.baseline_cost = artifacts.baseline_cost;
  p.baseline_test_accuracy = artifacts.baseline_test_accuracy;
  return p;
}

std::vector<Prepared> prepare_suite() {
  std::vector<Prepared> out;
  for (const auto& row : mlp::paper_table1()) {
    out.push_back(prepare(row.dataset));
  }
  return out;
}

core::TrainerConfig default_trainer_config(std::uint64_t seed) {
  return flow_config(seed).trainer;
}

OursOutcome run_ours(const Prepared& p, std::uint64_t seed) {
  const auto cfg = flow_config(seed);

  OursOutcome out;
  out.training =
      core::train_ga_axc(p.paper.topology, p.train, p.baseline, cfg.trainer);

  // Greedy post-GA refinement (PMLP_REFINE=0 disables): compensates for
  // the benchmark's ~1000x smaller GA budget versus the paper's 26M
  // evaluations by squeezing mask bits the GA did not get to explore.
  if (cfg.refine) {
    const double base_train_acc = mlp::accuracy(p.baseline, p.train);
    for (auto& point : out.training.estimated_pareto) {
      core::RefineConfig rcfg;
      rcfg.accuracy_floor =
          std::max(point.train_accuracy - cfg.refine_max_point_loss,
                   base_train_acc - cfg.trainer.problem.max_accuracy_loss);
      (void)core::refine_greedy(point.model, p.train, rcfg);
      point.train_accuracy = core::accuracy(point.model, p.train);
      point.fa_area = point.model.fa_area();
    }
  }

  out.evaluated = core::evaluate_hardware(out.training.estimated_pareto,
                                          p.test,
                                          hwmodel::CellLibrary::egfet_1v(),
                                          cfg.hardware);
  const auto best = core::best_within_loss(
      out.evaluated, p.baseline_test_accuracy, cfg.report_max_loss);
  if (best) {
    out.best = *best;
  } else {
    // Fall back to the most accurate evaluated design (small GA budgets on
    // the hard wine datasets may miss the 5% bound by a hair).
    double best_acc = -1.0;
    for (const auto& e : out.evaluated) {
      if (e.test_accuracy > best_acc) {
        best_acc = e.test_accuracy;
        out.best = e;
      }
    }
  }
  return out;
}

std::string fmt(double v, int width, int precision) {
  std::ostringstream os;
  os << std::setw(width) << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt(const std::string& s, int width) {
  std::ostringstream os;
  if (width < 0) {
    os << std::left << std::setw(-width) << s;
  } else {
    os << std::setw(width) << s;
  }
  return os.str();
}

}  // namespace pmlp::bench
