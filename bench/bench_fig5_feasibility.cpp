// Reproduces Fig. 5: feasibility of printed-battery / energy-harvester
// operation. The baseline [2], the approximate TC'23 [5] designs and our
// GA-AxC designs are classified into power-source zones; ours are
// re-"synthesized" at 0.6 V (EGFET minimum), which the paper shows pushes
// every design except Pendigits into the harvester zone.
#include <iostream>

#include "bench_common.hpp"
#include "pmlp/baselines/tc23.hpp"
#include "pmlp/hwmodel/power.hpp"
#include "pmlp/netlist/builders.hpp"

int main() {
  using namespace pmlp;
  const auto& lib = hwmodel::CellLibrary::egfet_1v();
  const auto lib06 = lib.at_voltage(0.6);

  std::cout << "=== Fig. 5: feasibility zones (area vs printed power "
               "source) ===\n(paper: baselines all infeasible; [5] needs "
               "large batteries; ours at 0.6 V all harvester except "
               "Pendigits)\n\n";
  std::cout << "Dataset        Series             Area cm2   Power mW   "
               "Zone\n";

  double avg_power_gain_06 = 0.0;
  int n = 0;
  for (const auto& row : mlp::paper_table1()) {
    const auto p = bench::prepare(row.dataset);

    auto print = [&](const char* series, double area_cm2, double power_mw) {
      const auto zone = hwmodel::classify_feasibility(area_cm2, power_mw);
      std::cout << bench::fmt(row.dataset, -14) << bench::fmt(series, -18)
                << bench::fmt(area_cm2, 9, 2) << bench::fmt(power_mw, 11, 3)
                << "   " << hwmodel::zone_name(zone) << "\n";
    };

    // MICRO'20 [2] exact baseline at 1 V.
    print("MICRO'20 [2]", p.baseline_cost.area_cm2(),
          p.baseline_cost.power_mw());

    // TC'23 [5] at 1 V.
    const auto tc = baselines::run_tc23(p.baseline, p.train, p.test, lib);
    print("TC'23 [5]", tc.cost.area_cm2(), tc.cost.power_mw());

    // Ours at 1 V and re-synthesized at 0.6 V.
    const auto ours = bench::run_ours(p, 1);
    print("ours @1.0V", ours.best.cost.area_cm2(), ours.best.cost.power_mw());
    const auto circuit = netlist::build_bespoke_mlp(
        ours.best.model.to_bespoke_desc(row.dataset + "_ours"));
    const auto cost06 = circuit.nl.cost(lib06);
    print("ours @0.6V", cost06.area_cm2(), cost06.power_mw());
    avg_power_gain_06 += p.baseline_cost.power_uw / cost06.power_uw;
    ++n;
    std::cout << "\n";
  }
  std::cout << "Average power gain of ours @0.6V vs baseline @1V: "
            << bench::fmt(avg_power_gain_06 / n, 0, 1)
            << "x  (paper: 912x at full GA budget)\n";
  return 0;
}
