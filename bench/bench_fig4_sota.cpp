// Reproduces Fig. 4: area and power of our MLPs and of the state-of-the-art
// approximate (TC'23 [5], TCAD'23 [7]) and stochastic (DATE'21 [10]) printed
// MLPs, normalized to the exact bespoke baseline [2] (log-scale series in
// the paper; printed here as normalized values per dataset).
#include <iostream>

#include "bench_common.hpp"
#include "pmlp/baselines/date21_sc.hpp"
#include "pmlp/baselines/tc23.hpp"
#include "pmlp/baselines/tcad23.hpp"

int main() {
  using namespace pmlp;
  const auto& lib = hwmodel::CellLibrary::egfet_1v();
  const int sc_samples = bench::env_int("PMLP_SC_SAMPLES", 200);

  std::cout << "=== Fig. 4: normalized area / power vs exact baseline [2] "
               "===\n(lower is better; paper: ours beats [5] by ~13x/14x, "
               "[7] by ~25x/14.5x, [10] by ~19x/26x on average)\n\n";
  std::cout << "Dataset        Series          NormArea   NormPower  "
               "TestAcc   Note\n";

  for (const auto& row : mlp::paper_table1()) {
    const auto p = bench::prepare(row.dataset);
    const double base_area = p.baseline_cost.area_mm2;
    const double base_power = p.baseline_cost.power_uw;

    auto print = [&](const char* series, double area_mm2, double power_uw,
                     double acc, const char* note) {
      std::cout << bench::fmt(row.dataset, -14) << bench::fmt(series, -16)
                << bench::fmt(area_mm2 / base_area, 9, 4)
                << bench::fmt(power_uw / base_power, 11, 4)
                << bench::fmt(acc, 10, 3) << "  " << note << "\n";
    };

    // Ours.
    const auto ours = bench::run_ours(p, 1);
    print("ours", ours.best.cost.area_mm2, ours.best.cost.power_uw,
          ours.best.test_accuracy, "GA-AxC");

    // TC'23 [5].
    const auto tc = baselines::run_tc23(p.baseline, p.train, p.test, lib);
    print("TC'23 [5]", tc.cost.area_mm2, tc.cost.power_uw, tc.test_accuracy,
          "popcount+truncation");

    // TCAD'23 [7] — the paper skips Pendigits for [7].
    if (row.dataset != "Pendigits") {
      baselines::Tcad23Config tcfg;
      tcfg.clock_ms = row.clock_ms;
      const auto tcad =
          baselines::run_tcad23(p.baseline, p.train, p.test, lib, tcfg);
      print("TCAD'23 [7]", tcad.area_cm2 * 100.0, tcad.power_mw * 1000.0,
            tcad.test_accuracy, "pruning + VOS @0.8V");
    }

    // DATE'21 [10] stochastic.
    baselines::ScMlp sc(p.float_net, {});
    const auto sc_cost = sc.cost(lib);
    const double sc_acc =
        sc.accuracy(p.test, static_cast<std::size_t>(sc_samples));
    print("DATE'21 [10]", sc_cost.area_mm2, sc_cost.power_uw, sc_acc,
          "stochastic, 1024-bit streams");
    std::cout << "\n";
  }
  return 0;
}
