// Reproduces Table II: our GA-AxC approximate printed MLPs at up to 5%
// accuracy loss — accuracy, area, power, and area/power reduction versus the
// exact bespoke baseline — next to the published values.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace pmlp;
  struct PaperRow {
    const char* name;
    double acc, area, power, ared, pred;
  };
  // Published Table II values for side-by-side comparison.
  const PaperRow paper[] = {
      {"BreastCancer", 0.947, 0.04, 0.15, 288, 274},
      {"Cardio", 0.873, 1.73, 6.5, 19.3, 19.0},
      {"Pendigits", 0.893, 12.7, 40.2, 5.3, 5.3},
      {"RedWine", 0.519, 0.04, 0.13, 470, 579},
      {"WhiteWine", 0.508, 0.20, 0.74, 122, 137},
  };

  std::cout << "=== Table II: our approximate printed MLPs (<=5% accuracy "
               "loss) ===\n\n";
  std::cout << "Dataset        Acc(meas) Acc(paper)  Area cm2   Power mW   "
               "AreaRed(meas) AreaRed(paper)  PowerRed(meas) PowerRed(paper)\n";

  double geo_area = 1.0, geo_power = 1.0;
  int n = 0;
  for (const auto& pr : paper) {
    const auto p = bench::prepare(pr.name);
    const auto ours = bench::run_ours(p, /*seed=*/1);
    const double area_red =
        p.baseline_cost.area_mm2 / ours.best.cost.area_mm2;
    const double power_red =
        p.baseline_cost.power_uw / ours.best.cost.power_uw;
    geo_area *= area_red;
    geo_power *= power_red;
    ++n;
    std::cout << bench::fmt(pr.name, -14)
              << bench::fmt(ours.best.test_accuracy, 9, 3)
              << bench::fmt(pr.acc, 11, 3)
              << bench::fmt(ours.best.cost.area_cm2(), 11, 3)
              << bench::fmt(ours.best.cost.power_mw(), 11, 3)
              << bench::fmt(area_red, 14, 1) << bench::fmt(pr.ared, 15, 1)
              << bench::fmt(power_red, 16, 1) << bench::fmt(pr.pred, 16, 1)
              << "  (baseline acc " << bench::fmt(p.baseline_test_accuracy, 0, 3)
              << ", GA evals " << ours.training.evaluations << ")\n";
  }
  std::cout << "\nGeometric-mean reduction: area "
            << bench::fmt(std::pow(geo_area, 1.0 / n), 0, 1) << "x, power "
            << bench::fmt(std::pow(geo_power, 1.0 / n), 0, 1)
            << "x  (paper reports 181x / 203x arithmetic averages at full "
               "26M-evaluation GA budgets)\n";
  return 0;
}
