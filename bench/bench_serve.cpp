// Serving-path benchmark: closed-loop load against a FrontServer (request
// batching + per-worker EvalWorkspace reuse over the shared ThreadPool) vs
// the naive architecture it replaces — one spawned thread and one fresh
// workspace per request. Both paths answer from identical precompiled
// CompiledNets, so the delta is pure serving overhead: thread spawn/join,
// workspace allocation, and scheduler churn vs amortized batch dispatch.
//
// Prints parseable rows for tools/run_bench.sh:
//
//   ThreadsUsed <n>                          pool size the server resolved
//   ServeBench naive  <qps> <p50_us> <p99_us>
//   ServeBench served <qps> <p50_us> <p99_us>
//   ServeSpeedup <served_qps / naive_qps>
//   ServeBatchFill <avg requests per dispatched batch>
//   ServeSimd <isa> <block>                  kernel dispatch + sweep block
//
// Scale knobs: PMLP_THREADS (pool size, 0 = all hardware threads),
// PMLP_SERVE_CLIENTS (closed-loop clients, default 4), PMLP_SERVE_REQS
// (requests per client per section, default 2000), PMLP_SERVE_MODELS
// (front size, default 8).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/core/serve.hpp"
#include "pmlp/core/simd.hpp"

namespace core = pmlp::core;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

core::ApproxMlp make_model(const pmlp::mlp::Topology& topo,
                           std::uint64_t seed) {
  const core::BitConfig bits;
  const core::ChromosomeCodec codec(topo, bits);
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    std::uniform_int_distribution<int> pick(b.lo, b.hi);
    int v = pick(rng);
    if (codec.kind(g) == core::GeneKind::kMask && rng() % 10 < 4) v = 0;
    genes[static_cast<std::size_t>(g)] = v;
  }
  return codec.decode(genes);
}

struct Load {
  std::vector<std::string> selectors;           ///< request i -> model file
  std::vector<std::vector<std::uint8_t>> codes; ///< request i -> features
};

struct Measured {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  long answered = 0;
};

Measured percentiles(std::vector<double>& lat_us, double wall_s) {
  Measured m;
  m.answered = static_cast<long>(lat_us.size());
  m.qps = static_cast<double>(lat_us.size()) / wall_s;
  std::sort(lat_us.begin(), lat_us.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(lat_us.size() - 1));
    return lat_us[i];
  };
  m.p50_us = at(0.50);
  m.p99_us = at(0.99);
  return m;
}

/// G closed-loop clients over `fn(request index) -> predicted class`;
/// returns per-request latencies and overall QPS.
template <typename Fn>
Measured drive(int n_clients, int reqs_per_client, const Fn& fn) {
  std::vector<std::vector<double>> lat(
      static_cast<std::size_t>(n_clients));
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      auto& mine = lat[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(reqs_per_client));
      for (int i = 0; i < reqs_per_client; ++i) {
        const int req = c * reqs_per_client + i;
        const auto s = Clock::now();
        (void)fn(req);
        mine.push_back(std::chrono::duration<double, std::micro>(
                           Clock::now() - s)
                           .count());
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  return percentiles(all, wall_s);
}

}  // namespace

int main() {
  const int n_clients = pmlp::bench::env_int("PMLP_SERVE_CLIENTS", 4);
  const int n_reqs = pmlp::bench::env_int("PMLP_SERVE_REQS", 2000);
  const int n_models = pmlp::bench::env_int("PMLP_SERVE_MODELS", 8);
  const int n_threads = pmlp::bench::env_int("PMLP_THREADS", 0);

  // Paper-shaped front: BreastCancer topology, one model per Pareto point.
  const pmlp::mlp::Topology topo{{10, 3, 2}};
  const fs::path dir =
      fs::temp_directory_path() /
      ("pmlp_bench_serve_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream index(dir / "index.tsv");
    index << std::setprecision(std::numeric_limits<double>::max_digits10);
    index << "file\ttest_accuracy\tarea_cm2\tpower_mw\tfunctional_match\n";
    for (int i = 0; i < n_models; ++i) {
      char name[40];
      std::snprintf(name, sizeof name, "front_%03d.model", i);
      core::save_model_file(make_model(topo, 1000 + i),
                            (dir / name).string());
      index << name << '\t' << 0.9 - 0.01 * i << '\t' << 1.0 + i << '\t'
            << 0.5 + 0.1 * i << "\t1\n";
    }
  }

  // Shared request tape: both sections answer the exact same requests.
  const int total = n_clients * n_reqs;
  Load load;
  load.selectors.reserve(static_cast<std::size_t>(total));
  load.codes.reserve(static_cast<std::size_t>(total));
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> code(0, 15);
  std::uniform_int_distribution<int> which(0, n_models - 1);
  for (int i = 0; i < total; ++i) {
    char name[40];
    std::snprintf(name, sizeof name, "front_%03d.model", which(rng));
    load.selectors.emplace_back(name);
    std::vector<std::uint8_t> c(static_cast<std::size_t>(topo.n_inputs()));
    for (auto& v : c) v = static_cast<std::uint8_t>(code(rng));
    load.codes.push_back(std::move(c));
  }

  core::FrontServer server(dir.string(),
                           {.n_threads = n_threads, .max_batch = 64});
  std::printf("ThreadsUsed %d\n", server.pool_size());

  // Naive architecture: one std::thread + one fresh EvalWorkspace per
  // request, over the same precompiled nets (the compile is NOT charged to
  // the naive path — only the per-request serving overhead is).
  const auto entries = core::load_front_dir(dir.string());
  std::vector<core::CompiledNet> nets;
  nets.reserve(entries.size());
  for (const auto& e : entries) nets.emplace_back(e.model);
  const auto find_net = [&](const std::string& file) -> const core::CompiledNet& {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].file == file) return nets[i];
    }
    return nets.front();
  };
  auto naive = drive(n_clients, n_reqs, [&](int req) {
    int predicted = -1;
    std::thread worker([&] {
      core::EvalWorkspace ws;  // fresh per request, like the thread
      predicted = find_net(load.selectors[static_cast<std::size_t>(req)])
                      .predict(load.codes[static_cast<std::size_t>(req)], ws);
    });
    worker.join();
    return predicted;
  });

  // Batched server path: same tape through FrontServer::classify.
  auto served = drive(n_clients, n_reqs, [&](int req) {
    const auto reply =
        server.classify(load.selectors[static_cast<std::size_t>(req)],
                        load.codes[static_cast<std::size_t>(req)]);
    return reply.predicted;
  });

  // Cross-check: the served answers must match the oracle on a sample.
  {
    core::EvalWorkspace ws;
    for (int req = 0; req < std::min(total, 256); ++req) {
      const auto reply =
          server.classify(load.selectors[static_cast<std::size_t>(req)],
                          load.codes[static_cast<std::size_t>(req)]);
      const int want =
          find_net(load.selectors[static_cast<std::size_t>(req)])
              .predict(load.codes[static_cast<std::size_t>(req)], ws);
      if (!reply.ok || reply.predicted != want) {
        std::fprintf(stderr, "error: served answer diverged from oracle\n");
        fs::remove_all(dir);
        return 1;
      }
    }
  }

  std::printf("ServeBench naive %.1f %.2f %.2f\n", naive.qps, naive.p50_us,
              naive.p99_us);
  std::printf("ServeBench served %.1f %.2f %.2f\n", served.qps,
              served.p50_us, served.p99_us);
  std::printf("ServeSpeedup %.3f\n", served.qps / std::max(naive.qps, 1e-9));
  std::printf("ServeBatchFill %.3f\n", server.stats().batch_fill());
  std::printf("ServeSimd %s %d\n",
              core::simd_isa_name(core::active_simd_isa()),
              core::CompiledNet::kBlockSamples);
  fs::remove_all(dir);
  return 0;
}
