// google-benchmark micro suite for the hot kernels of the framework:
// FA-count area estimation (the GA's inner loop), Eq. 4 inference,
// chromosome decode, netlist build/simulate, and the sample-blocked
// predict_batch kernels (scalar vs the dispatched SIMD ISA, across batch
// sizes and layer densities) — so kernel-level wins are measured in their
// own tier, apart from flow wall time.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/simd.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/mlp/train_engine.hpp"
#include "pmlp/netlist/builders.hpp"

#ifdef PMLP_HAVE_GPERFTOOLS
#include <gperftools/profiler.h>
#endif

namespace {

using namespace pmlp;

core::ApproxMlp make_model(std::uint64_t seed) {
  const mlp::Topology topo{{16, 5, 10}};  // Pendigits-sized
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return codec.decode(genes);
}

/// Pendigits-sized model with controlled connection density: `sparse`
/// prunes ~60% of masks (the shape evolved fronts actually have), dense
/// keeps every connection live.
core::ApproxMlp make_eval_model(std::uint64_t seed, bool sparse) {
  const mlp::Topology topo{{16, 5, 10}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    int v = b.lo +
        static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
    if (codec.kind(g) == core::GeneKind::kMask) {
      v = sparse ? (rng() % 10 < 6 ? 0 : v) : b.hi;
    }
    genes[static_cast<std::size_t>(g)] = v;
  }
  return codec.decode(genes);
}

std::vector<std::uint8_t> make_codes(std::size_t n_samples, int n_features,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> codes(n_samples *
                                  static_cast<std::size_t>(n_features));
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng() & 15u);
  return codes;
}

void BM_FaAreaEstimate(benchmark::State& state) {
  const auto model = make_model(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.fa_area());
  }
}
BENCHMARK(BM_FaAreaEstimate);

void BM_Eq4Inference(benchmark::State& state) {
  const auto model = make_model(2);
  std::vector<std::uint8_t> x(16, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_Eq4Inference);

void BM_ChromosomeDecode(benchmark::State& state) {
  const mlp::Topology topo{{16, 5, 10}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  const auto genes = codec.encode(make_model(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(genes));
  }
}
BENCHMARK(BM_ChromosomeDecode);

void BM_NetlistBuild(benchmark::State& state) {
  const auto model = make_model(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        netlist::build_bespoke_mlp(model.to_bespoke_desc("m")));
  }
}
BENCHMARK(BM_NetlistBuild);

void BM_NetlistSimulate(benchmark::State& state) {
  const auto model = make_model(5);
  const auto circuit = netlist::build_bespoke_mlp(model.to_bespoke_desc("m"));
  std::vector<std::uint8_t> x(16, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.predict(x));
  }
}
BENCHMARK(BM_NetlistSimulate);

/// The tentpole kernel: sample-blocked batched classification. args:
/// (simd 0/1, batch size, sparse 0/1). simd=0 forces scalar dispatch,
/// simd=1 uses the machine's best detected ISA — the reported label
/// records which one actually ran, and items/s is samples classified/s.
void BM_PredictBatch(benchmark::State& state) {
  const bool use_simd = state.range(0) != 0;
  const auto batch = static_cast<std::size_t>(state.range(1));
  const bool sparse = state.range(2) != 0;
  const auto model = make_eval_model(sparse ? 11 : 12, sparse);
  const core::CompiledNet net(model);
  const auto codes = make_codes(batch, net.n_inputs(), 21);
  std::vector<std::int32_t> preds(batch);
  core::EvalWorkspace ws;
  const core::SimdIsa prev = core::active_simd_isa();
  const core::SimdIsa isa = core::set_simd_isa(
      use_simd ? core::detect_simd_isa() : core::SimdIsa::kScalar);
  for (auto _ : state) {
    net.predict_batch(codes.data(), batch, preds.data(), ws);
    benchmark::DoNotOptimize(preds.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.SetLabel(core::simd_isa_name(isa));
  core::set_simd_isa(prev);
}
BENCHMARK(BM_PredictBatch)
    ->ArgsProduct({{0, 1}, {1, 32, 128}, {0, 1}})
    ->ArgNames({"simd", "batch", "sparse"});

/// Pre-batching reference: the same samples classified one predict() call
/// at a time (the per-sample scalar path every consumer used before).
void BM_PredictPerSample(benchmark::State& state) {
  const bool sparse = state.range(0) != 0;
  const auto model = make_eval_model(sparse ? 11 : 12, sparse);
  const core::CompiledNet net(model);
  constexpr std::size_t kBatch = 128;
  const auto codes = make_codes(kBatch, net.n_inputs(), 21);
  std::vector<std::int32_t> preds(kBatch);
  core::EvalWorkspace ws;
  const auto n_in = static_cast<std::size_t>(net.n_inputs());
  for (auto _ : state) {
    for (std::size_t s = 0; s < kBatch; ++s) {
      preds[s] = net.predict({codes.data() + s * n_in, n_in}, ws);
    }
    benchmark::DoNotOptimize(preds.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_PredictPerSample)->Arg(0)->Arg(1)->ArgName("sparse");

/// Random normalized dataset for the training-kernel benches (synthetic:
/// only the arithmetic shape matters at this tier).
datasets::Dataset make_train_data(std::size_t n, int n_features,
                                  int n_classes, std::uint64_t seed) {
  datasets::Dataset d;
  d.name = "bench";
  d.n_features = n_features;
  d.n_classes = n_classes;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  d.features.resize(n * static_cast<std::size_t>(n_features));
  for (auto& f : d.features) f = u(rng);
  d.labels.resize(n);
  for (auto& y : d.labels) {
    y = static_cast<int>(rng() % static_cast<unsigned>(n_classes));
  }
  return d;
}

constexpr std::size_t kTrainSamples = 512;

mlp::Topology train_topology(bool wide) {
  // Pendigits-sized vs a wider-than-paper shape, to show how the sweeps
  // scale with layer width.
  return wide ? mlp::Topology{{32, 16, 10}} : mlp::Topology{{16, 5, 10}};
}

/// One full training epoch (shuffle + every minibatch + momentum update +
/// final accuracy pass) through the blocked TrainEngine. args: (simd 0/1,
/// batch size, wide 0/1); the label records the ISA that actually ran, and
/// items/s is training samples swept per second.
void BM_TrainStep(benchmark::State& state) {
  const bool use_simd = state.range(0) != 0;
  const auto batch = static_cast<int>(state.range(1));
  const bool wide = state.range(2) != 0;
  const auto topo = train_topology(wide);
  const auto data = make_train_data(kTrainSamples, topo.layers.front(),
                                    topo.layers.back(), 31);
  mlp::BackpropConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = batch;
  cfg.seed = 7;
  const core::SimdIsa prev = core::active_simd_isa();
  const core::SimdIsa isa = core::set_simd_isa(
      use_simd ? core::detect_simd_isa() : core::SimdIsa::kScalar);
  mlp::TrainEngine engine(data, cfg);
  mlp::FloatMlp net(topo, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.train(net));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrainSamples));
  state.SetLabel(core::simd_isa_name(isa));
  core::set_simd_isa(prev);
}
BENCHMARK(BM_TrainStep)
    ->ArgsProduct({{0, 1}, {32, 128}, {0, 1}})
    ->ArgNames({"simd", "batch", "wide"});

/// Pre-engine reference: the same epoch through the per-sample naive loop
/// (allocation-per-trace, no blocking, no SIMD).
void BM_TrainStepNaive(benchmark::State& state) {
  const bool wide = state.range(0) != 0;
  const auto topo = train_topology(wide);
  const auto data = make_train_data(kTrainSamples, topo.layers.front(),
                                    topo.layers.back(), 31);
  mlp::BackpropConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 32;
  cfg.seed = 7;
  mlp::FloatMlp net(topo, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp::train_backprop_naive(net, data, cfg));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrainSamples));
}
BENCHMARK(BM_TrainStepNaive)->Arg(0)->Arg(1)->ArgName("wide");

void BM_AdderReduction(benchmark::State& state) {
  std::vector<int> heights(static_cast<std::size_t>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adder::reduce_columns(heights));
  }
}
BENCHMARK(BM_AdderReduction)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): PMLP_PROFILE=<path> wraps the
// whole run in gperftools CPU profiling when the binary was linked against
// it (PMLP_HAVE_GPERFTOOLS, optional in bench/CMakeLists.txt), so kernel-
// tier regressions can be attributed to specific functions. Without the
// library the knob is a loudly-documented no-op.
int main(int argc, char** argv) {
  const char* profile = std::getenv("PMLP_PROFILE");
#ifdef PMLP_HAVE_GPERFTOOLS
  if (profile != nullptr && *profile != '\0') ProfilerStart(profile);
#else
  if (profile != nullptr && *profile != '\0') {
    std::fprintf(stderr,
                 "PMLP_PROFILE set but bench_micro was built without "
                 "gperftools; profiling disabled\n");
  }
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#ifdef PMLP_HAVE_GPERFTOOLS
  if (profile != nullptr && *profile != '\0') {
    ProfilerStop();
    std::fprintf(stderr, "wrote CPU profile to %s\n", profile);
  }
#endif
  return 0;
}
