// google-benchmark micro suite for the hot kernels of the framework:
// FA-count area estimation (the GA's inner loop), Eq. 4 inference,
// chromosome decode, netlist build/simulate, and the sample-blocked
// predict_batch kernels (scalar vs the dispatched SIMD ISA, across batch
// sizes and layer densities) — so kernel-level wins are measured in their
// own tier, apart from flow wall time.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/simd.hpp"
#include "pmlp/netlist/builders.hpp"

namespace {

using namespace pmlp;

core::ApproxMlp make_model(std::uint64_t seed) {
  const mlp::Topology topo{{16, 5, 10}};  // Pendigits-sized
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return codec.decode(genes);
}

/// Pendigits-sized model with controlled connection density: `sparse`
/// prunes ~60% of masks (the shape evolved fronts actually have), dense
/// keeps every connection live.
core::ApproxMlp make_eval_model(std::uint64_t seed, bool sparse) {
  const mlp::Topology topo{{16, 5, 10}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    int v = b.lo +
        static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
    if (codec.kind(g) == core::GeneKind::kMask) {
      v = sparse ? (rng() % 10 < 6 ? 0 : v) : b.hi;
    }
    genes[static_cast<std::size_t>(g)] = v;
  }
  return codec.decode(genes);
}

std::vector<std::uint8_t> make_codes(std::size_t n_samples, int n_features,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> codes(n_samples *
                                  static_cast<std::size_t>(n_features));
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng() & 15u);
  return codes;
}

void BM_FaAreaEstimate(benchmark::State& state) {
  const auto model = make_model(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.fa_area());
  }
}
BENCHMARK(BM_FaAreaEstimate);

void BM_Eq4Inference(benchmark::State& state) {
  const auto model = make_model(2);
  std::vector<std::uint8_t> x(16, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_Eq4Inference);

void BM_ChromosomeDecode(benchmark::State& state) {
  const mlp::Topology topo{{16, 5, 10}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  const auto genes = codec.encode(make_model(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(genes));
  }
}
BENCHMARK(BM_ChromosomeDecode);

void BM_NetlistBuild(benchmark::State& state) {
  const auto model = make_model(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        netlist::build_bespoke_mlp(model.to_bespoke_desc("m")));
  }
}
BENCHMARK(BM_NetlistBuild);

void BM_NetlistSimulate(benchmark::State& state) {
  const auto model = make_model(5);
  const auto circuit = netlist::build_bespoke_mlp(model.to_bespoke_desc("m"));
  std::vector<std::uint8_t> x(16, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.predict(x));
  }
}
BENCHMARK(BM_NetlistSimulate);

/// The tentpole kernel: sample-blocked batched classification. args:
/// (simd 0/1, batch size, sparse 0/1). simd=0 forces scalar dispatch,
/// simd=1 uses the machine's best detected ISA — the reported label
/// records which one actually ran, and items/s is samples classified/s.
void BM_PredictBatch(benchmark::State& state) {
  const bool use_simd = state.range(0) != 0;
  const auto batch = static_cast<std::size_t>(state.range(1));
  const bool sparse = state.range(2) != 0;
  const auto model = make_eval_model(sparse ? 11 : 12, sparse);
  const core::CompiledNet net(model);
  const auto codes = make_codes(batch, net.n_inputs(), 21);
  std::vector<std::int32_t> preds(batch);
  core::EvalWorkspace ws;
  const core::SimdIsa prev = core::active_simd_isa();
  const core::SimdIsa isa = core::set_simd_isa(
      use_simd ? core::detect_simd_isa() : core::SimdIsa::kScalar);
  for (auto _ : state) {
    net.predict_batch(codes.data(), batch, preds.data(), ws);
    benchmark::DoNotOptimize(preds.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.SetLabel(core::simd_isa_name(isa));
  core::set_simd_isa(prev);
}
BENCHMARK(BM_PredictBatch)
    ->ArgsProduct({{0, 1}, {1, 32, 128}, {0, 1}})
    ->ArgNames({"simd", "batch", "sparse"});

/// Pre-batching reference: the same samples classified one predict() call
/// at a time (the per-sample scalar path every consumer used before).
void BM_PredictPerSample(benchmark::State& state) {
  const bool sparse = state.range(0) != 0;
  const auto model = make_eval_model(sparse ? 11 : 12, sparse);
  const core::CompiledNet net(model);
  constexpr std::size_t kBatch = 128;
  const auto codes = make_codes(kBatch, net.n_inputs(), 21);
  std::vector<std::int32_t> preds(kBatch);
  core::EvalWorkspace ws;
  const auto n_in = static_cast<std::size_t>(net.n_inputs());
  for (auto _ : state) {
    for (std::size_t s = 0; s < kBatch; ++s) {
      preds[s] = net.predict({codes.data() + s * n_in, n_in}, ws);
    }
    benchmark::DoNotOptimize(preds.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_PredictPerSample)->Arg(0)->Arg(1)->ArgName("sparse");

void BM_AdderReduction(benchmark::State& state) {
  std::vector<int> heights(static_cast<std::size_t>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adder::reduce_columns(heights));
  }
}
BENCHMARK(BM_AdderReduction)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
