// google-benchmark micro suite for the hot kernels of the framework:
// FA-count area estimation (the GA's inner loop), Eq. 4 inference,
// chromosome decode, netlist build/simulate, and NSGA-II generations.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.hpp"
#include "pmlp/core/chromosome.hpp"
#include "pmlp/netlist/builders.hpp"

namespace {

using namespace pmlp;

core::ApproxMlp make_model(std::uint64_t seed) {
  const mlp::Topology topo{{16, 5, 10}};  // Pendigits-sized
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return codec.decode(genes);
}

void BM_FaAreaEstimate(benchmark::State& state) {
  const auto model = make_model(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.fa_area());
  }
}
BENCHMARK(BM_FaAreaEstimate);

void BM_Eq4Inference(benchmark::State& state) {
  const auto model = make_model(2);
  std::vector<std::uint8_t> x(16, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_Eq4Inference);

void BM_ChromosomeDecode(benchmark::State& state) {
  const mlp::Topology topo{{16, 5, 10}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  const auto genes = codec.encode(make_model(3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(genes));
  }
}
BENCHMARK(BM_ChromosomeDecode);

void BM_NetlistBuild(benchmark::State& state) {
  const auto model = make_model(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        netlist::build_bespoke_mlp(model.to_bespoke_desc("m")));
  }
}
BENCHMARK(BM_NetlistBuild);

void BM_NetlistSimulate(benchmark::State& state) {
  const auto model = make_model(5);
  const auto circuit = netlist::build_bespoke_mlp(model.to_bespoke_desc("m"));
  std::vector<std::uint8_t> x(16, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.predict(x));
  }
}
BENCHMARK(BM_NetlistSimulate);

void BM_AdderReduction(benchmark::State& state) {
  std::vector<int> heights(static_cast<std::size_t>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adder::reduce_columns(heights));
  }
}
BENCHMARK(BM_AdderReduction)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
