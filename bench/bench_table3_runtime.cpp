// Reproduces Table III: training execution time of (1) gradient-based
// training (accuracy only), (2) GA-based training (accuracy only), and
// (3) our hardware/approximation-aware GA-AxC training, per dataset.
// The paper's absolute minutes come from ~26M-evaluation runs on an EPYC;
// here the same three trainers run at a scaled-down budget and the *ratios*
// (GA ~ GA-AxC >> gradient) are the reproduced shape.
//
// (3) runs through the staged FlowEngine, so this bench also reports the
// aggregate per-stage wall times of the full Fig. 2 pipeline (including the
// pool-parallel hardware-analysis stage) — parsed by tools/run_bench.sh
// into BENCH_table3.json.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "pmlp/core/suite.hpp"

int main() {
  using namespace pmlp;
  struct PaperRow {
    const char* name;
    double grad_min, ga_min, gaaxc_min;
  };
  const PaperRow paper[] = {
      {"BreastCancer", 0.5, 8, 9},   {"Cardio", 2, 42, 45},
      {"Pendigits", 14, 298, 344},   {"RedWine", 2, 21, 22},
      {"WhiteWine", 7, 77, 79},
  };

  std::cout << "=== Table III: training execution times (seconds at the "
               "scaled benchmark budget; paper minutes in parentheses) "
               "===\n\n";
  std::cout << "Dataset        Grad s(paper min)   GA s(paper min)   "
               "GA-AxC s(paper min)   GA-AxC/GA ratio\n";

  double sum_grad = 0, sum_ga = 0, sum_axc = 0;
  long axc_evals = 0, axc_cache_hits = 0;
  std::map<std::string, double> stage_walls;  // aggregated over datasets
  long hw_candidates = 0;
  core::RefineFrontReport refine_totals;  // aggregated over datasets
  for (const auto& pr : paper) {
    // Full Fig. 2 pipeline through the FlowEngine (GA seeded like the old
    // bench: default_trainer_config(2)); its stage reports provide the
    // per-stage wall times, its training result the GA-AxC timing.
    auto cfg = bench::default_flow_config(2);
    core::FlowEngine engine(core::load_paper_dataset(pr.name),
                            core::paper_topology(pr.name), cfg);
    const auto flow = engine.run();
    for (const auto& s : flow.stages) {
      stage_walls[core::flow_stage_name(s.stage)] += s.wall_seconds;
      if (s.stage == core::FlowStage::kHardware) hw_candidates += s.items;
    }
    refine_totals.points += flow.refine.points;
    refine_totals.trials += flow.refine.trials;
    refine_totals.early_aborts += flow.refine.early_aborts;
    refine_totals.bits_cleared += flow.refine.bits_cleared;
    refine_totals.biases_simplified += flow.refine.biases_simplified;
    const auto& axc = flow.training;

    // (1) Gradient training time: a clean rerun at the same epochs budget.
    mlp::BackpropConfig bp;
    bp.epochs = bench::env_int("PMLP_EPOCHS", 150);
    bp.seed = 77;
    mlp::FloatMlp net(core::paper_topology(pr.name), 77);
    const auto grad =
        mlp::train_backprop(net, flow.baseline.train_raw, bp);

    // (2) GA accuracy-only, same evaluation budget as (3).
    const auto ga = core::train_ga_accuracy_only(
        core::paper_topology(pr.name), flow.baseline.train, cfg.trainer);

    sum_grad += grad.wall_seconds;
    sum_ga += ga.wall_seconds;
    sum_axc += axc.wall_seconds;
    axc_evals += axc.evaluations;
    axc_cache_hits += axc.cache_hits;
    std::cout << bench::fmt(pr.name, -14)
              << bench::fmt(grad.wall_seconds, 8, 2) << " ("
              << bench::fmt(pr.grad_min, 0, 1) << ")"
              << bench::fmt(ga.wall_seconds, 12, 2) << " ("
              << bench::fmt(pr.ga_min, 0, 0) << ")"
              << bench::fmt(axc.wall_seconds, 12, 2) << " ("
              << bench::fmt(pr.gaaxc_min, 0, 0) << ")"
              << bench::fmt(axc.wall_seconds / std::max(ga.wall_seconds, 1e-9),
                            14, 2)
              << "\n";
  }
  // Evaluation-engine aggregate over the five GA-AxC runs, parsed by
  // tools/run_bench.sh into the eval_throughput figure of BENCH_table3.json.
  std::cout << "\nThroughput: "
            << bench::fmt(static_cast<double>(axc_evals) /
                              std::max(sum_axc, 1e-9), 0, 1)
            << " evals/s over " << axc_evals
            << " GA-AxC evals, cache hit rate "
            << bench::fmt(static_cast<double>(axc_cache_hits) /
                              std::max<double>(static_cast<double>(axc_evals),
                                               1.0), 0, 4)
            << "\n";
  // Per-stage pipeline accounting (also parsed by tools/run_bench.sh).
  std::cout << "\nPer-stage wall times (FlowEngine, seconds summed over the "
               "5 datasets):\n";
  for (const char* name :
       {"split", "backprop", "baseline", "ga", "refine", "hardware",
        "select"}) {
    const auto it = stage_walls.find(name);
    if (it == stage_walls.end()) continue;
    std::cout << "StageWall " << name << ' '
              << bench::fmt(it->second, 0, 4) << "\n";
  }
  std::cout << "HwCandidates " << hw_candidates << "\n";
  // Incremental refine-engine accounting (also parsed by tools/run_bench.sh
  // into the refine_stage block of BENCH_table3.json).
  std::cout << "RefineStats trials " << refine_totals.trials << " aborts "
            << refine_totals.early_aborts << " bits "
            << refine_totals.bits_cleared << " biases "
            << refine_totals.biases_simplified << " points "
            << refine_totals.points << "\n";
  std::cout << "\nAverage: grad " << bench::fmt(sum_grad / 5, 0, 2)
            << " s, GA " << bench::fmt(sum_ga / 5, 0, 2) << " s, GA-AxC "
            << bench::fmt(sum_axc / 5, 0, 2)
            << " s  (paper: 5 / 89 / 100 min — GA-AxC stays close to "
               "hardware-unaware GA despite doubling the trainable "
               "parameters)\n";
  return 0;
}
