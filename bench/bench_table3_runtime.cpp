// Reproduces Table III: training execution time of (1) gradient-based
// training (accuracy only), (2) GA-based training (accuracy only), and
// (3) our hardware/approximation-aware GA-AxC training, per dataset.
// The paper's absolute minutes come from ~26M-evaluation runs on an EPYC;
// here the same three trainers run at a scaled-down budget and the *ratios*
// (GA ~ GA-AxC >> gradient) are the reproduced shape.
//
// (3) runs the whole Table I suite through ONE CampaignRunner: the five
// Fig. 2 flows execute concurrently over a single shared worker pool of
// PMLP_THREADS workers (stage-granular scheduling, no per-flow thread
// forests), replacing the old one-flow-at-a-time loop. The campaign's
// aggregate accounting (wall, flows/sec, per-stage rollups) and the actual
// thread counts are printed for tools/run_bench.sh, which runs this bench
// once serial (PMLP_THREADS=1) and once on all hardware threads and records
// the shared-pool speedup as the `campaign` block of BENCH_table3.json.
#include <iostream>
#include <limits>
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "pmlp/core/campaign.hpp"
#include "pmlp/mlp/train_engine.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/simd.hpp"
#include "pmlp/core/suite.hpp"
#include "pmlp/core/thread_pool.hpp"

int main() {
  using namespace pmlp;
  struct PaperRow {
    const char* name;
    double grad_min, ga_min, gaaxc_min;
  };
  const PaperRow paper[] = {
      {"BreastCancer", 0.5, 8, 9},   {"Cardio", 2, 42, 45},
      {"Pendigits", 14, 298, 344},   {"RedWine", 2, 21, 22},
      {"WhiteWine", 7, 77, 79},
  };

  // (3) GA-AxC: the five flows (GA seeded like the old bench:
  // default_flow_config(2)) on one shared pool. Per-flow results are
  // bit-identical to the old sequential FlowEngine loop.
  const int env_threads = bench::env_int("PMLP_THREADS", 0);
  core::CampaignConfig campaign_cfg;
  campaign_cfg.n_threads = env_threads;
  core::CampaignRunner runner(campaign_cfg);
  for (const auto& pr : paper) {
    core::CampaignFlowSpec spec;
    spec.name = pr.name;
    spec.dataset = pr.name;
    spec.data = core::load_paper_dataset(pr.name);
    spec.topology = core::paper_topology(pr.name);
    spec.config = bench::default_flow_config(2);
    runner.add_flow(std::move(spec));
  }
  const auto campaign = runner.run();
  for (const auto& f : campaign.flows) {
    if (f.status != core::CampaignFlowStatus::kDone) {
      std::cerr << "campaign flow " << f.name << " "
                << core::campaign_flow_status_name(f.status) << ": "
                << f.error << "\n";
      return 1;
    }
  }

  std::cout << "=== Table III: training execution times (seconds at the "
               "scaled benchmark budget; paper minutes in parentheses) "
               "===\n\n";
  std::cout << "Dataset        Grad s(paper min)   GA s(paper min)   "
               "GA-AxC s(paper min)   GA-AxC/GA ratio\n";

  // Full-precision cell for the machine-readable rows: the 2-decimal table
  // cells truncated sub-10ms stages to "0.00" (the PR 6 index.tsv lesson),
  // so run_bench.sh parses these instead.
  const auto full = [](double v) {
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    return os.str();
  };

  double sum_grad = 0, sum_ga = 0, sum_axc = 0;
  double sum_naive = 0;
  double grad_samples = 0;  // samples swept by the engine reruns
  long axc_evals = 0, axc_cache_hits = 0;
  std::map<std::string, double> stage_walls;  // aggregated over datasets
  long hw_candidates = 0;
  core::RefineFrontReport refine_totals;  // aggregated over datasets
  for (std::size_t i = 0; i < std::size(paper); ++i) {
    const auto& pr = paper[i];
    const core::FlowResult& flow = *campaign.flows[i].result;
    for (const auto& s : flow.stages) {
      stage_walls[core::flow_stage_name(s.stage)] += s.wall_seconds;
      if (s.stage == core::FlowStage::kHardware) hw_candidates += s.items;
    }
    refine_totals.points += flow.refine.points;
    refine_totals.trials += flow.refine.trials;
    refine_totals.early_aborts += flow.refine.early_aborts;
    refine_totals.bits_cleared += flow.refine.bits_cleared;
    refine_totals.biases_simplified += flow.refine.biases_simplified;
    const auto& axc = flow.training;

    // (1) Gradient training time: a clean rerun at the same epochs budget
    // on the blocked SIMD TrainEngine (PMLP_THREADS-wide block
    // parallelism), plus the per-sample naive oracle for the speedup row.
    mlp::BackpropConfig bp;
    bp.epochs = bench::env_int("PMLP_EPOCHS", 150);
    bp.seed = 77;
    bp.n_threads = env_threads;
    mlp::FloatMlp net(core::paper_topology(pr.name), 77);
    const auto grad =
        mlp::train_backprop(net, flow.baseline.train_raw, bp);
    mlp::FloatMlp naive_net(core::paper_topology(pr.name), 77);
    const auto naive =
        mlp::train_backprop_naive(naive_net, flow.baseline.train_raw, bp);
    sum_naive += naive.wall_seconds;
    grad_samples += static_cast<double>(grad.epochs_run) *
                    static_cast<double>(flow.baseline.train_raw.size());

    // (2) GA accuracy-only, same evaluation budget as (3). Runs outside
    // the campaign with PMLP_THREADS-wide intra-run fitness parallelism —
    // the pool-effectiveness reference run_bench.sh turns into
    // `parallel_speedup`.
    const auto cfg = bench::default_flow_config(2);
    const auto ga = core::train_ga_accuracy_only(
        core::paper_topology(pr.name), flow.baseline.train, cfg.trainer);

    sum_grad += grad.wall_seconds;
    sum_ga += ga.wall_seconds;
    sum_axc += axc.wall_seconds;
    axc_evals += axc.evaluations;
    axc_cache_hits += axc.cache_hits;
    std::cout << bench::fmt(pr.name, -14)
              << bench::fmt(grad.wall_seconds, 8, 2) << " ("
              << bench::fmt(pr.grad_min, 0, 1) << ")"
              << bench::fmt(ga.wall_seconds, 12, 2) << " ("
              << bench::fmt(pr.ga_min, 0, 0) << ")"
              << bench::fmt(axc.wall_seconds, 12, 2) << " ("
              << bench::fmt(pr.gaaxc_min, 0, 0) << ")"
              << bench::fmt(axc.wall_seconds / std::max(ga.wall_seconds, 1e-9),
                            14, 2)
              << "\n";
    // Machine-readable twin of the table row, at full precision.
    std::cout << "Timing " << pr.name << ' ' << full(grad.wall_seconds) << ' '
              << full(ga.wall_seconds) << ' ' << full(axc.wall_seconds)
              << "\n";
  }
  // Training-engine aggregate over the five gradient reruns (parsed by
  // tools/run_bench.sh into the backprop_stage block of BENCH_table3.json):
  // engine vs per-sample naive oracle at the same epochs budget.
  std::cout << "BackpropStage naive_s " << full(sum_naive) << " engine_s "
            << full(sum_grad) << " samples_per_s "
            << full(grad_samples / std::max(sum_grad, 1e-9)) << " isa "
            << core::simd_isa_name(core::active_simd_isa()) << " block "
            << mlp::TrainEngine::kBlockSamples << " speedup "
            << full(sum_naive / std::max(sum_grad, 1e-9)) << "\n";
  // Evaluation-engine aggregate over the five GA-AxC runs, parsed by
  // tools/run_bench.sh into the eval_throughput figure of BENCH_table3.json.
  std::cout << "\nThroughput: "
            << bench::fmt(static_cast<double>(axc_evals) /
                              std::max(sum_axc, 1e-9), 0, 1)
            << " evals/s over " << axc_evals
            << " GA-AxC evals, cache hit rate "
            << bench::fmt(static_cast<double>(axc_cache_hits) /
                              std::max<double>(static_cast<double>(axc_evals),
                                               1.0), 0, 4)
            << "\n";
  // The kernel configuration those evals ran on (ISA the runtime dispatch
  // picked + layer-sweep block size) — parsed into the same eval_throughput
  // block so the per-PR trajectory stays comparable across machines.
  std::cout << "SimdDispatch " << core::simd_isa_name(core::active_simd_isa())
            << ' ' << core::CompiledNet::kBlockSamples << "\n";
  // Per-stage pipeline accounting (also parsed by tools/run_bench.sh).
  // Inside a campaign every stage runs serially on its worker, so these
  // are pure compute walls; flow-level overlap shows up in the Campaign
  // wall below instead.
  std::cout << "\nPer-stage wall times (CampaignRunner flows, seconds "
               "summed over the 5 datasets):\n";
  for (const char* name :
       {"split", "backprop", "baseline", "ga", "refine", "hardware",
        "select"}) {
    const auto it = stage_walls.find(name);
    if (it == stage_walls.end()) continue;
    std::cout << "StageWall " << name << ' ' << full(it->second) << "\n";
  }
  std::cout << "HwCandidates " << hw_candidates << "\n";
  // Incremental refine-engine accounting (also parsed by tools/run_bench.sh
  // into the refine_stage block of BENCH_table3.json).
  std::cout << "RefineStats trials " << refine_totals.trials << " aborts "
            << refine_totals.early_aborts << " bits "
            << refine_totals.bits_cleared << " biases "
            << refine_totals.biases_simplified << " points "
            << refine_totals.points << "\n";
  // Actual thread counts, cross-checked by run_bench.sh against the
  // PMLP_THREADS it exported (so the recorded speedups stay attributable):
  // ThreadsUsed is the resolved intra-run knob of the reference GA runs,
  // Campaign's `threads` the shared pool actually constructed.
  std::cout << "ThreadsUsed " << core::resolve_n_threads(env_threads) << "\n";
  std::cout << "Campaign flows " << campaign.flows.size() << " threads "
            << campaign.n_threads << " wall " << full(campaign.wall_seconds)
            << " stage_wall " << full(campaign.stage_wall_seconds)
            << " flows_per_s " << full(campaign.flows_per_second()) << "\n";
  std::cout << "\nAverage: grad " << bench::fmt(sum_grad / 5, 0, 2)
            << " s, GA " << bench::fmt(sum_ga / 5, 0, 2) << " s, GA-AxC "
            << bench::fmt(sum_axc / 5, 0, 2)
            << " s  (paper: 5 / 89 / 100 min — GA-AxC stays close to "
               "hardware-unaware GA despite doubling the trainable "
               "parameters)\n";
  return 0;
}
