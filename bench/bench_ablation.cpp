// Ablation study of the design choices DESIGN.md calls out (not a paper
// table — supporting evidence for the framework's construction):
//   A. doped vs purely random initial population (§IV-A "semi-random"),
//   B. gene-kind-aware mutation vs generic reset/creep,
//   C. greedy post-GA refinement on vs off (our extension),
//   D. adder architecture: FA-only CSA (paper model) vs Wallace-with-HA vs
//      sequential ripple accumulation, priced on the trained designs.
// Metric for A/B: hypervolume of the estimated Pareto front (error vs FA
// area, reference (1.0, baseline FA area)).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "pmlp/adder/variants.hpp"
#include "pmlp/core/pareto.hpp"
#include "pmlp/core/refine.hpp"
#include "pmlp/netlist/activity.hpp"
#include "pmlp/nsga2/random_search.hpp"
#include "pmlp/netlist/builders.hpp"

namespace {

using namespace pmlp;

double front_hypervolume(const core::TrainingResult& r, double area_ref) {
  std::vector<core::Point2> pts;
  for (const auto& p : r.estimated_pareto) {
    pts.push_back({1.0 - p.train_accuracy, static_cast<double>(p.fa_area)});
  }
  return core::hypervolume2(pts, 1.0, area_ref);
}

}  // namespace

int main() {
  using namespace pmlp;
  std::cout << "=== Ablation study (dataset: BreastCancer, Cardio) ===\n\n";

  for (const char* name : {"BreastCancer", "Cardio"}) {
    const auto p = bench::prepare(name);
    auto cfg = bench::default_trainer_config(5);
    // Reference area: the doped (non-approximate) solution's FA count.
    const auto doped = core::ApproxMlp::from_quant_baseline(
        p.baseline, cfg.bits);
    const auto area_ref = static_cast<double>(doped.fa_area());

    std::cout << "--- " << name << " (baseline FA area "
              << static_cast<long>(area_ref) << ") ---\n";

    // A. doping (same constraint on both sides; only the seeding differs).
    {
      auto no_doping = cfg;
      no_doping.problem.doping_fraction = 0.0;
      const auto r1 =
          core::train_ga_axc(p.paper.topology, p.train, p.baseline, cfg);
      const auto r2 =
          core::train_ga_axc(p.paper.topology, p.train, p.baseline, no_doping);
      std::cout << "A. doped init HV  " << bench::fmt(front_hypervolume(r1, area_ref), 10, 1)
                << "   random init HV " << bench::fmt(front_hypervolume(r2, area_ref), 10, 1)
                << "\n";
    }

    // B. mutation operator.
    {
      auto generic = cfg;
      generic.problem.domain_mutation = false;
      const auto r1 =
          core::train_ga_axc(p.paper.topology, p.train, p.baseline, cfg);
      const auto r2 =
          core::train_ga_axc(p.paper.topology, p.train, p.baseline, generic);
      std::cout << "B. domain mut HV  " << bench::fmt(front_hypervolume(r1, area_ref), 10, 1)
                << "   generic mut HV " << bench::fmt(front_hypervolume(r2, area_ref), 10, 1)
                << "\n";
    }

    // C. greedy refinement on the best-within-5% design.
    {
      const auto ours = bench::run_ours(p, 5);
      core::ApproxMlp refined = ours.best.model;
      core::RefineConfig rcfg;
      rcfg.accuracy_floor =
          core::accuracy(refined, p.train) - 0.01;
      const auto report = core::refine_greedy(refined, p.train, rcfg);
      std::cout << "C. refine: FA " << report.fa_before << " -> "
                << report.fa_after << " (" << report.bits_cleared
                << " bits cleared, " << report.biases_simplified
                << " biases simplified, acc "
                << bench::fmt(report.accuracy_before, 0, 3) << " -> "
                << bench::fmt(report.accuracy_after, 0, 3) << ")\n";

      // D. adder architecture on the refined design.
      double fa_only = 0, with_ha = 0, ripple = 0;
      for (const auto& spec : refined.adder_specs()) {
        fa_only += adder::fa_only_cost(spec).ha_equivalents();
        with_ha += adder::csa_with_ha_cost(spec).ha_equivalents();
        ripple += adder::ripple_accumulate_cost(spec).ha_equivalents();
      }
      std::cout << "D. adder arch (HA-equiv): FA-only CSA "
                << bench::fmt(fa_only, 0, 0) << ", Wallace+HA "
                << bench::fmt(with_ha, 0, 0) << ", ripple accumulate "
                << bench::fmt(ripple, 0, 0) << "\n";

      // E. switching-activity power: confirm the static-dominated regime
      // the per-cell power model assumes (EGFET at a 200 ms clock).
      const auto circuit = netlist::build_bespoke_mlp(
          refined.to_bespoke_desc("refined"));
      std::vector<std::uint8_t> codes;
      const std::size_t n_vec = std::min<std::size_t>(p.test.size(), 64);
      for (std::size_t i = 0; i < n_vec; ++i) {
        const auto row = p.test.row(i);
        codes.insert(codes.end(), row.begin(), row.end());
      }
      const auto vectors = netlist::vectors_from_samples(
          circuit.input_buses, circuit.nl, codes, p.test.n_features);
      const auto activity = netlist::analyze_activity(
          circuit.nl, vectors, hwmodel::CellLibrary::egfet_1v(),
          p.paper.clock_ms);
      std::cout << "E. activity power: static "
                << bench::fmt(activity.static_power_uw / 1000.0, 0, 3)
                << " mW, dynamic "
                << bench::fmt(activity.dynamic_power_uw / 1000.0, 0, 6)
                << " mW (" << activity.total_toggles << " toggles over "
                << activity.vectors << " vectors)\n";
    }
    // F. NSGA-II vs uniform random search at the same evaluation budget.
    {
      core::ChromosomeCodec codec(p.paper.topology, cfg.bits);
      core::HwAwareProblem problem(codec, p.train, p.baseline, cfg.problem);
      const auto ga =
          core::train_ga_axc(p.paper.topology, p.train, p.baseline, cfg);
      nsga2::RandomSearchConfig rs;
      rs.evaluations = ga.evaluations;
      rs.n_threads = cfg.n_threads;
      const auto random = nsga2::random_search(problem, rs);
      std::vector<core::Point2> pts;
      for (const auto& ind : random.pareto_front) {
        pts.push_back({ind.objectives[0], ind.objectives[1]});
      }
      std::cout << "F. NSGA-II HV     "
                << bench::fmt(front_hypervolume(ga, area_ref), 10, 1)
                << "   random search HV "
                << bench::fmt(core::hypervolume2(pts, 1.0, area_ref), 8, 1)
                << "  (same " << ga.evaluations << " evals)\n";
    }

    // G. fine-grained bit masks vs structured connection pruning (§III-B).
    {
      auto coarse = cfg;
      coarse.problem.coarse_pruning = true;
      const auto fine =
          core::train_ga_axc(p.paper.topology, p.train, p.baseline, cfg);
      const auto structured =
          core::train_ga_axc(p.paper.topology, p.train, p.baseline, coarse);
      std::cout << "G. fine masks HV  "
                << bench::fmt(front_hypervolume(fine, area_ref), 10, 1)
                << "   structured HV  "
                << bench::fmt(front_hypervolume(structured, area_ref), 10, 1)
                << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "Interpretation: hypervolume is over (train error, FA area) "
               "with the 10% constraint active everywhere. Expected shape: "
               "NSGA-II >> random search at equal budgets (F); fine-grained "
               "bit masks dominate structured connection pruning (G, the "
               "paper's §III-B argument); refinement removes FAs at ~zero "
               "accuracy cost (C); dynamic power is negligible next to "
               "static at printed clocks (E); ripple accumulation is far "
               "costlier than the CSA tree the FA proxy assumes (D).\n";
  return 0;
}
