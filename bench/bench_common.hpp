// Shared harness for the per-table/figure bench binaries: prepares the five
// paper datasets (synthetic stand-ins), trains + quantizes the exact bespoke
// baseline [2], prices it on the EGFET library, and runs the GA-AxC flow
// through the staged core::FlowEngine (the baseline artifacts are injected,
// so one prepared dataset serves any number of GA runs/seeds).
//
// Scale knobs (environment):
//   PMLP_POP   NSGA-II population          (default 60)
//   PMLP_GENS  NSGA-II generations         (default 30)
//   PMLP_EPOCHS backprop epochs            (default 150)
//   PMLP_THREADS flow-wide parallelism     (default 0 = all hardware
//              threads; GA evaluation and hardware analysis — and in
//              bench_table3_runtime the shared campaign-pool size)
//   PMLP_CACHE genome memo-cache entries   (default 4096; 0 = off)
//   PMLP_SC_SAMPLES stochastic-sim samples (default 200)
// The paper's full-scale runs used ~26M evaluations; these defaults keep a
// laptop run in minutes while preserving every trend (see EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/hwmodel/cells.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/mlp/quant_mlp.hpp"
#include "pmlp/mlp/topology.hpp"

namespace pmlp::bench {

int env_int(const char* name, int fallback);

/// Everything the benches need about one paper dataset.
struct Prepared {
  mlp::PaperBaselineRow paper;      ///< published Table I row
  datasets::Dataset train_raw;      ///< float features (normalized)
  datasets::Dataset test_raw;
  datasets::QuantizedDataset train; ///< 4-bit codes
  datasets::QuantizedDataset test;
  mlp::FloatMlp float_net;          ///< gradient-trained reference
  mlp::QuantMlp baseline;           ///< exact bespoke baseline [2]
  hwmodel::CircuitCost baseline_cost;  ///< baseline netlist at 1 V
  double baseline_train_accuracy = 0.0;
  double baseline_test_accuracy = 0.0;
};

/// Prepare one dataset by Table I name ("BreastCancer", ...).
Prepared prepare(const std::string& dataset_name);

/// All five, Table I order.
std::vector<Prepared> prepare_suite();

/// Flow config honoring the env knobs (GA seeded with `seed`).
core::FlowConfig default_flow_config(std::uint64_t seed = 1);

/// Trainer defaults honoring the env knobs.
core::TrainerConfig default_trainer_config(std::uint64_t seed = 1);

/// FlowEngine primed with `p`'s already-built artifacts: the split,
/// float-net and baseline stages are injected (reported as reused), so
/// run() only executes GA -> refine -> hardware -> select.
core::FlowEngine make_engine(const Prepared& p, std::uint64_t seed = 1);

/// GA-AxC + hardware sign-off; returns the Table II pick (min area within
/// 5% test-accuracy loss; falls back to the most accurate evaluated design).
struct OursOutcome {
  core::TrainingResult training;
  std::vector<core::HwEvaluatedPoint> evaluated;
  core::HwEvaluatedPoint best;
  std::vector<core::StageReport> stages;  ///< ga/refine/hardware/select walls
};
OursOutcome run_ours(const Prepared& p, std::uint64_t seed = 1);

/// Fixed-width table cell helpers.
std::string fmt(double v, int width, int precision);
std::string fmt(const std::string& s, int width);

}  // namespace pmlp::bench
