// Reproduces Table I: the exact bespoke baseline printed MLPs [2] —
// topology, parameter count, accuracy, area (cm2) and power (mW) — and
// prints the published values next to our measurements.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace pmlp;
  std::cout << "=== Table I: Evaluation of the baseline printed MLPs [2] ===\n"
            << "(measured = synthetic-data reproduction on our EGFET model; "
               "paper = published values)\n\n";
  std::cout << "Dataset        Topology   Params   Acc(meas) Acc(paper)  "
               "Area cm2(meas) Area cm2(paper)  Power mW(meas) Power mW(paper)\n";

  for (const auto& row : mlp::paper_table1()) {
    const auto p = bench::prepare(row.dataset);
    std::cout << bench::fmt(row.dataset, -14)
              << bench::fmt(row.topology.to_string(), -11)
              << bench::fmt(static_cast<double>(row.topology.n_parameters()), 6, 0)
              << bench::fmt(p.baseline_test_accuracy, 11, 3)
              << bench::fmt(row.accuracy, 11, 3)
              << bench::fmt(p.baseline_cost.area_cm2(), 16, 2)
              << bench::fmt(row.area_cm2, 16, 1)
              << bench::fmt(p.baseline_cost.power_mw(), 16, 1)
              << bench::fmt(row.power_mw, 16, 1) << "\n";
  }
  std::cout << "\nNote: Table I prints 38 parameters for BreastCancer "
               "(consistent with 9 inputs); the (10,3,2) topology has 41.\n";
  return 0;
}
